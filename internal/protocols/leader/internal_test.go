package leader

import (
	"testing"

	"dyndiam/internal/dynet"
	"dyndiam/internal/rng"
)

// newTestMachine builds one machine with small, predictable schedule
// parameters for unit-level message tests.
func newTestMachine(t *testing.T, id, n int) *machine {
	t.Helper()
	m := Protocol{}.NewMachine(dynet.Config{
		N: n, ID: id, Input: int64(id % 2),
		Coins:  rng.New(7).Split(uint64(id) + 1),
		Budget: dynet.Budget(n),
		Extra:  map[string]int64{ExtraK: 4, ExtraAlpha: 1, ExtraBeta: 1},
	}).(*machine)
	return m
}

func TestAbsorbMaxUpdatesOnlyUpward(t *testing.T) {
	m := newTestMachine(t, 3, 16)
	m.absorb(1, m.encodeSpreadFor(9, 1))
	if m.maxID != 9 || m.maxVal != 1 {
		t.Fatalf("maxID=%d maxVal=%d, want 9, 1", m.maxID, m.maxVal)
	}
	m.absorb(1, m.encodeSpreadFor(5, 0)) // lower id: ignored
	if m.maxID != 9 || m.maxVal != 1 {
		t.Fatalf("lower id overwrote max: %d", m.maxID)
	}
}

// encodeSpreadFor builds a msgMax message for an arbitrary (id, val), for
// tests only.
func (m *machine) encodeSpreadFor(id int, val int64) dynet.Message {
	saveID, saveVal := m.maxID, m.maxVal
	m.maxID, m.maxVal = id, val
	msg := m.encodeSpread(0)
	m.maxID, m.maxVal = saveID, saveVal
	return msg
}

func TestAbsorbLockFirstWins(t *testing.T) {
	m := newTestMachine(t, 2, 16)
	m.absorb(1, m.encodeLock(msgLock, lockKey{7, 0}))
	if m.lockID != 7 || m.lockPhase != 0 {
		t.Fatalf("lock = (%d, %d), want (7, 0)", m.lockID, m.lockPhase)
	}
	m.absorb(1, m.encodeLock(msgLock, lockKey{9, 0})) // already locked: ignored
	if m.lockID != 7 {
		t.Fatalf("second lock overwrote the first: %d", m.lockID)
	}
}

func TestAbsorbUnlockReleasesAndRemembers(t *testing.T) {
	m := newTestMachine(t, 2, 16)
	key := lockKey{7, 3}
	m.absorb(1, m.encodeLock(msgLock, key))
	m.absorb(1, m.encodeLock(msgUnlock, key))
	if m.lockID != -1 {
		t.Fatalf("unlock did not release: lockID=%d", m.lockID)
	}
	if !m.unlocked[key.encode()] {
		t.Fatal("unlock not remembered")
	}
	// A lock bearing a voided key is rejected forever.
	m.absorb(1, m.encodeLock(msgLock, key))
	if m.lockID != -1 {
		t.Fatal("voided lock key re-acquired")
	}
	// But the same candidate with a fresh phase stamp may lock again.
	fresh := lockKey{7, 5}
	m.absorb(1, m.encodeLock(msgLock, fresh))
	if m.lockID != 7 || m.lockPhase != 5 {
		t.Fatalf("fresh-phase lock rejected: (%d, %d)", m.lockID, m.lockPhase)
	}
}

func TestStaleUnlockDoesNotVoidNewLock(t *testing.T) {
	m := newTestMachine(t, 2, 16)
	m.absorb(1, m.encodeLock(msgLock, lockKey{7, 5}))
	m.absorb(1, m.encodeLock(msgUnlock, lockKey{7, 3})) // stale phase
	if m.lockID != 7 || m.lockPhase != 5 {
		t.Fatalf("stale unlock released a newer lock: (%d, %d)", m.lockID, m.lockPhase)
	}
}

func TestAbsorbLeaderFirstAnnouncementWins(t *testing.T) {
	m := newTestMachine(t, 2, 16)
	m.leaderID, m.leaderVal = 9, 1
	msg := m.encodeLeader()
	m2 := newTestMachine(t, 3, 16)
	m2.absorb(1, msg)
	if m2.leaderID != 9 || m2.leaderVal != 1 {
		t.Fatalf("leader not adopted: (%d, %d)", m2.leaderID, m2.leaderVal)
	}
	// A conflicting later announcement is ignored (first wins).
	m.leaderID, m.leaderVal = 5, 0
	m2.absorb(1, m.encodeLeader())
	if m2.leaderID != 9 {
		t.Fatalf("later announcement overwrote leader: %d", m2.leaderID)
	}
}

func TestAbsorbTruncatedMessagesIgnored(t *testing.T) {
	m := newTestMachine(t, 1, 16)
	before := *m
	// 2-bit message: tag read fails.
	m.absorb(1, dynet.Message{Payload: []byte{0xFF}, NBits: 2})
	// Valid tag but truncated body.
	m.absorb(1, dynet.Message{Payload: []byte{0x00}, NBits: 3})
	if m.maxID != before.maxID || m.lockID != before.lockID || m.leaderID != before.leaderID {
		t.Fatal("truncated messages mutated state")
	}
}

func TestUnlockByClearsOwnLockOnly(t *testing.T) {
	m := newTestMachine(t, 2, 16)
	m.lockID, m.lockPhase = 7, 3
	m.unlockBy(lockKey{8, 3}) // different candidate
	if m.lockID != 7 {
		t.Fatal("unrelated unlock released the lock")
	}
	m.unlockBy(lockKey{7, 3})
	if m.lockID != -1 {
		t.Fatal("matching unlock did not release")
	}
}

func TestSpreadRotationCarriesUnlocks(t *testing.T) {
	m := newTestMachine(t, 2, 16)
	m.pending = []lockKey{{4, 1}}
	sawUnlock, sawMax := false, false
	for idx := 0; idx < 6; idx++ {
		msg := m.encodeSpread(idx)
		m2 := newTestMachine(t, 3, 16)
		m2.absorb(1, msg)
		if m2.unlocked[(lockKey{4, 1}).encode()] {
			sawUnlock = true
		} else {
			sawMax = true
		}
	}
	if !sawUnlock || !sawMax {
		t.Fatalf("rotation incomplete: unlock=%v max=%v", sawUnlock, sawMax)
	}
}
