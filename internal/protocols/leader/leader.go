// Package leader implements the paper's Section 7 upper-bound protocol:
// leader election in O(log N) flooding rounds without knowing the diameter,
// given an estimate N' with |N'-N|/N <= 1/3-c for a constant c > 0.
//
// The protocol proceeds in phases with a doubling diameter guess D'. Each
// phase has four subphases:
//
//	SPREAD — gossip the largest id seen (plus pending unlock notices and,
//	         always, the leader announcement once one exists);
//	COUNT1 — majority counting of "which candidate id do you currently
//	         support": a node V whose own id survived SPREAD checks that a
//	         majority of nodes have seen V's id *before* acquiring any
//	         locks. This is the paper's key trick to avoid excessive lock
//	         rollbacks: with high probability at most one candidate per
//	         phase proceeds to locking.
//	LOCK   — the surviving candidate floods lock(V, phase); a node accepts
//	         the first lock it hears unless it is already locked.
//	COUNT2 — majority counting of "who holds your lock". If V locked a
//	         majority it declares itself leader and floods the announcement
//	         in all future rounds; otherwise it floods unlock(V, phase) in
//	         future SPREADs and the locks roll back.
//
// Majority counting uses the one-sided sketch machinery of package
// counting; its conservative threshold needs exactly the |N'-N|/N <= 1/3-c
// premise of Theorem 8. Locks are phase-stamped so a stale unlock can never
// void a later, legitimate lock.
//
// Correctness is as in the paper: a declared leader has locked a true
// majority (w.h.p.), which no other candidate can also do; and once
// D' >= D, SPREAD delivers the globally largest id and all outstanding
// unlocks everywhere, so the largest-id node passes both counts and wins.
// The total running time is dominated by the last phase,
// O(k (D + log N)) = O(D log^2 N) rounds with k = Θ(log N) sketch copies —
// O(log N) flooding rounds up to the extra log factor our round-robin
// single-record-per-message counting costs relative to the paper's [18]
// invocation (see DESIGN.md, substitutions).
package leader

import (
	"dyndiam/internal/bitio"
	"dyndiam/internal/dynet"
	"dyndiam/internal/obs"
	"dyndiam/internal/protocols/counting"
	"dyndiam/internal/rng"
)

// Interned event names, created once so emit paths stay allocation-free.
var (
	keySpread    = obs.Intern("spread")
	keyCount1    = obs.Intern("count1")
	keyLock      = obs.Intern("lock")
	keyCount2    = obs.Intern("count2")
	keyCandidacy = obs.Intern("candidacy")
	keyLeader    = obs.Intern("leader_declared")
)

// subphaseKeys maps subphase indices to their interned span names.
var subphaseKeys = [numSubphases]obs.Key{keySpread, keyCount1, keyLock, keyCount2}

// Extra keys read by the protocol.
const (
	// ExtraNPrime is the size estimate N' (default: the true N).
	ExtraNPrime = "nprime"
	// ExtraCPermille is the accuracy margin c in thousandths
	// (default 200, i.e. c = 0.2; the premise is |N'-N|/N <= 1/3-c).
	ExtraCPermille = "cpermille"
	// ExtraK overrides the sketch copy count (default KFor(N')).
	ExtraK = "K"
	// ExtraAlpha scales the SPREAD/LOCK subphase length alpha*(D'+w)
	// (default 4).
	ExtraAlpha = "alpha"
	// ExtraBeta scales the COUNT subphase length beta*k*(D'+w)
	// (default 2).
	ExtraBeta = "beta"
	// ExtraSkipStage1 disables the COUNT1 pre-lock majority check — the
	// ablation of the paper's "avoid excessive lock roll back" design
	// (Section 7). Any node whose id survives SPREAD then locks.
	ExtraSkipStage1 = "skipstage1"
	// ExtraOutputValue makes machines output the leader's Input value
	// instead of the leader's id — used by the consensus reduction.
	ExtraOutputValue = "outputvalue"
)

// Message type tags (3 bits).
const (
	msgMax uint64 = iota
	msgCount1
	msgLock
	msgCount2
	msgUnlock
	msgLeader
)

// Subphase indices within a phase.
const (
	subSpread = iota
	subCount1
	subLock
	subCount2
	numSubphases
)

// Protocol is the Section 7 LEADERELECT protocol.
type Protocol struct {
	// Obs, when non-nil, is shared by every machine the protocol builds
	// and receives the phase/lock state machine's events: PhaseEnter at
	// each subphase boundary, LockAcquire when a node takes a lock (its
	// own or a flooded one), LockRollback when a candidacy fails or an
	// unlock notice voids a held lock, and Custom "candidacy" /
	// "leader_declared" markers. Machines emit from their Step/Deliver
	// calls, so instrumented runs must use Engine Workers=1 (sinks are
	// single-goroutine; see obs.Sink).
	Obs obs.Sink
}

// Name implements dynet.Protocol.
func (Protocol) Name() string { return "leader/section7" }

// NewMachine implements dynet.Protocol.
func (p Protocol) NewMachine(cfg dynet.Config) dynet.Machine {
	nPrime := int(cfg.ExtraInt(ExtraNPrime, int64(cfg.N)))
	c := float64(cfg.ExtraInt(ExtraCPermille, 200)) / 1000
	k := int(cfg.ExtraInt(ExtraK, int64(counting.KFor(nPrime))))
	m := &machine{
		cfg:         cfg,
		nPrime:      nPrime,
		tau:         counting.MajorityThreshold(nPrime, c),
		k:           k,
		alpha:       int(cfg.ExtraInt(ExtraAlpha, 4)),
		beta:        int(cfg.ExtraInt(ExtraBeta, 2)),
		w:           bitio.WidthFor(nPrime + 1),
		skipStage1:  cfg.ExtraInt(ExtraSkipStage1, 0) != 0,
		outputValue: cfg.ExtraInt(ExtraOutputValue, 0) != 0,
		coins:       cfg.Coins.Split('l', 'e'),
		maxID:       cfg.ID,
		maxVal:      cfg.Input,
		leaderID:    -1,
		lockID:      -1,
		lockPhase:   -1,
		unlocked:    make(map[int64]bool),
		obs:         p.Obs,
	}
	return m
}

type machine struct {
	cfg         dynet.Config
	nPrime      int
	tau         float64
	k           int
	alpha, beta int
	w           int
	skipStage1  bool
	outputValue bool
	coins       *rng.Source
	obs         obs.Sink // nil unless the run is instrumented

	// Gossip state.
	maxID     int            // largest id seen
	maxVal    int64          // Input value of the largest-id node seen
	leaderID  int            // -1 until a leader announcement arrives
	leaderVal int64          // leader's input value
	lockID    int            // current lock holder id, -1 if unlocked
	lockPhase int            // phase stamp of the current lock
	pending   []lockKey      // unlock notices this node relays in SPREAD
	unlocked  map[int64]bool // lock keys known to be void

	// Phase-local state.
	curPhase    int
	sketch1     *counting.Sketch
	sketch2     *counting.Sketch
	isCandidate bool // survived COUNT1 this phase (or skipStage1)
	lockMsg     lockKey
	hasLockMsg  bool
	failures    int // cumulative failed candidacies (rolled-back locks)

	// Instrumentation (see Stats).
	candidacies   int
	locksAccepted int
	unlocksSeen   int
	decidedPhase  int
}

// lockKey identifies a lock attempt: candidate id + phase.
type lockKey struct {
	id    int
	phase int
}

func (k lockKey) encode() int64 { return int64(k.id)<<20 | int64(k.phase) }

func decodeLockKey(v int64) lockKey {
	return lockKey{id: int(v >> 20), phase: int(v & (1<<20 - 1))}
}

// emit reports one event when the machine is instrumented; with a nil sink
// it is a branch and a return, keeping the uninstrumented path free.
func (m *machine) emit(kind obs.Kind, r int, a, b int64, name obs.Key) {
	if m.obs != nil {
		m.obs.Emit(obs.Event{Kind: kind, Round: int32(r), Node: int32(m.cfg.ID), A: a, B: b, Name: name})
	}
}

// locate maps a 1-based round to (phase, subphase, index within subphase,
// first round of phase). Subphase lengths: SPREAD and LOCK take
// alpha*(2^p+w) rounds, COUNT1 and COUNT2 take beta*k*(2^p+w).
func (m *machine) locate(r int) (phase, sub, idx int) {
	r-- // zero-base
	for p := 0; ; p++ {
		dp := 1 << uint(p)
		ls := m.alpha * (dp + m.w)
		lc := m.beta * m.k * (dp + m.w)
		total := 2*ls + 2*lc
		if r < total {
			switch {
			case r < ls:
				return p, subSpread, r
			case r < ls+lc:
				return p, subCount1, r - ls
			case r < ls+lc+ls:
				return p, subLock, r - ls - lc
			default:
				return p, subCount2, r - ls - lc - ls
			}
		}
		r -= total
	}
}

func (m *machine) Step(r int) (dynet.Action, dynet.Message) {
	phase, sub, idx := m.locate(r)
	m.transition(r, phase, sub, idx)

	// A node that knows the leader floods the announcement every round,
	// unconditionally: always-send flooding terminates within D rounds
	// against any adversary.
	if m.leaderID >= 0 {
		return dynet.Send, m.encodeLeader()
	}

	switch sub {
	case subSpread:
		if !m.coins.Bool() {
			return dynet.Receive, dynet.Message{}
		}
		return dynet.Send, m.encodeSpread(idx)
	case subCount1:
		return m.stepCount(m.sketch1, msgCount1)
	case subLock:
		if m.isCandidate {
			// The candidate floods its lock unconditionally.
			return dynet.Send, m.encodeLock(msgLock, lockKey{m.cfg.ID, phase})
		}
		if m.hasLockMsg && m.coins.Bool() {
			return dynet.Send, m.encodeLock(msgLock, m.lockMsg)
		}
		return dynet.Receive, dynet.Message{}
	default: // subCount2
		return m.stepCount(m.sketch2, msgCount2)
	}
}

// transition runs the subphase-boundary logic (executed by every node at
// the first round of each subphase).
func (m *machine) transition(r, phase, sub, idx int) {
	if idx != 0 {
		return
	}
	m.emit(obs.KindPhaseEnter, r, int64(phase), int64(sub), subphaseKeys[sub])
	switch sub {
	case subSpread:
		// Evaluate the previous phase's COUNT2 before wiping it: the
		// candidate may have been sending in the final COUNT2 round,
		// and all deliveries for that round are complete by now.
		m.finishCount2(r)
		// New phase: reset phase-local state.
		m.curPhase = phase
		m.sketch1 = nil
		m.sketch2 = nil
		m.isCandidate = false
		m.hasLockMsg = false
	case subCount1:
		// Count supporters of the id each node currently believes is
		// the maximum.
		m.sketch1 = counting.NewSketch(m.k)
		m.sketch1.SetOwn(int64(m.maxID), nonce(phase, 1), m.cfg.Coins)
	case subLock:
		if m.leaderID >= 0 {
			return
		}
		if m.maxID == m.cfg.ID {
			if m.skipStage1 {
				m.isCandidate = true
			} else {
				m.isCandidate = m.sketch1.Estimate(int64(m.cfg.ID)) >= m.tau
			}
			if m.isCandidate {
				m.candidacies++
				m.emit(obs.KindCustom, r, int64(phase), 0, keyCandidacy)
			}
		}
		if m.isCandidate {
			// The candidate locks itself first.
			key := lockKey{m.cfg.ID, phase}
			if m.lockID == -1 {
				m.lockID, m.lockPhase = key.id, key.phase
				m.emit(obs.KindLockAcquire, r, int64(key.id), int64(key.phase), 0)
			}
			m.lockMsg, m.hasLockMsg = key, true
		}
	case subCount2:
		m.sketch2 = counting.NewSketch(m.k)
		if m.lockID >= 0 {
			key := lockKey{m.lockID, m.lockPhase}
			m.sketch2.SetOwn(key.encode(), nonce(phase, 2), m.cfg.Coins)
		}
	}
}

// finishCount2 evaluates the candidate's COUNT2 outcome for the phase that
// just ended: declare leadership on a majority of locks, otherwise schedule
// the rollback (flood unlock notices in future SPREADs).
func (m *machine) finishCount2(r int) {
	if !m.isCandidate || m.leaderID >= 0 || m.sketch2 == nil {
		return
	}
	key := lockKey{m.cfg.ID, m.curPhase}
	if m.sketch2.Estimate(key.encode()) >= m.tau {
		m.leaderID = m.cfg.ID
		m.leaderVal = m.cfg.Input
		m.decidedPhase = m.curPhase
		m.emit(obs.KindCustom, r, int64(m.curPhase), 0, keyLeader)
	} else {
		m.pending = append(m.pending, key)
		m.unlockBy(key)
		m.failures++
		m.emit(obs.KindLockRollback, r, int64(key.id), int64(key.phase), 0)
	}
}

func nonce(phase, stage int) uint64 { return uint64(phase)<<8 | uint64(stage) }

func (m *machine) unlockBy(key lockKey) {
	m.unlocked[key.encode()] = true
	if m.lockID == key.id && m.lockPhase == key.phase {
		m.lockID, m.lockPhase = -1, -1
	}
}

func (m *machine) stepCount(s *counting.Sketch, tag uint64) (dynet.Action, dynet.Message) {
	if s == nil || !m.coins.Bool() {
		return dynet.Receive, dynet.Message{}
	}
	value, copy, min, ok := s.PickRecord(m.coins)
	if !ok {
		return dynet.Receive, dynet.Message{}
	}
	var w bitio.Writer
	w.WriteUint(tag, 3)
	counting.EncodeRecord(&w, value, copy, min)
	return dynet.Send, dynet.Message{Payload: w.Bytes(), NBits: w.Len()}
}

func (m *machine) encodeSpread(idx int) dynet.Message {
	// Rotate deterministically between the max-id payload and pending
	// unlock notices so both make progress.
	var w bitio.Writer
	if len(m.pending) > 0 && idx%2 == 1 {
		key := m.pending[(idx/2)%len(m.pending)]
		w.WriteUint(msgUnlock, 3)
		w.WriteUvarint(uint64(key.encode()))
		return dynet.Message{Payload: w.Bytes(), NBits: w.Len()}
	}
	w.WriteUint(msgMax, 3)
	w.WriteUvarint(uint64(m.maxID))
	w.WriteUvarint(uint64(m.maxVal))
	return dynet.Message{Payload: w.Bytes(), NBits: w.Len()}
}

func (m *machine) encodeLock(tag uint64, key lockKey) dynet.Message {
	var w bitio.Writer
	w.WriteUint(tag, 3)
	w.WriteUvarint(uint64(key.encode()))
	return dynet.Message{Payload: w.Bytes(), NBits: w.Len()}
}

func (m *machine) encodeLeader() dynet.Message {
	var w bitio.Writer
	w.WriteUint(msgLeader, 3)
	w.WriteUvarint(uint64(m.leaderID))
	w.WriteUvarint(uint64(m.leaderVal))
	return dynet.Message{Payload: w.Bytes(), NBits: w.Len()}
}

func (m *machine) Deliver(r int, msgs []dynet.Message) {
	for _, msg := range msgs {
		m.absorb(r, msg)
	}
}

func (m *machine) absorb(r int, msg dynet.Message) {
	rd := bitio.NewReader(msg.Payload, msg.NBits)
	tag, err := rd.ReadUint(3)
	if err != nil {
		return
	}
	switch tag {
	case msgMax:
		id, err1 := rd.ReadUvarint()
		val, err2 := rd.ReadUvarint()
		if err1 != nil || err2 != nil {
			return
		}
		if int(id) > m.maxID {
			m.maxID = int(id)
			m.maxVal = int64(val)
		}
	case msgCount1:
		value, copy, min, err := counting.DecodeRecord(rd)
		if err == nil && m.sketch1 != nil {
			m.sketch1.Merge(value, copy, min)
		}
	case msgCount2:
		value, copy, min, err := counting.DecodeRecord(rd)
		if err == nil && m.sketch2 != nil {
			m.sketch2.Merge(value, copy, min)
		}
	case msgLock:
		v, err := rd.ReadUvarint()
		if err != nil {
			return
		}
		key := decodeLockKey(int64(v))
		if m.unlocked[key.encode()] {
			return
		}
		if m.lockID == -1 {
			m.lockID, m.lockPhase = key.id, key.phase
			m.locksAccepted++
			m.emit(obs.KindLockAcquire, r, int64(key.id), int64(key.phase), 0)
		}
		if !m.hasLockMsg {
			m.lockMsg, m.hasLockMsg = key, true
		}
	case msgUnlock:
		v, err := rd.ReadUvarint()
		if err != nil {
			return
		}
		key := decodeLockKey(int64(v))
		if !m.unlocked[key.encode()] {
			held := m.lockID == key.id && m.lockPhase == key.phase
			m.unlockBy(key)
			m.pending = append(m.pending, key)
			m.unlocksSeen++
			if held {
				m.emit(obs.KindLockRollback, r, int64(key.id), int64(key.phase), 0)
			}
		}
	case msgLeader:
		id, err1 := rd.ReadUvarint()
		val, err2 := rd.ReadUvarint()
		if err1 != nil || err2 != nil {
			return
		}
		if m.leaderID < 0 {
			m.leaderID = int(id)
			m.leaderVal = int64(val)
		}
	}
}

func (m *machine) Output() (int64, bool) {
	if m.leaderID < 0 {
		return 0, false
	}
	if m.outputValue {
		return m.leaderVal, true
	}
	return int64(m.leaderID), true
}

// FailedCandidacies returns how many candidacies this machine declared and
// then rolled back — the quantity the two-stage-locking ablation measures.
func FailedCandidacies(mm dynet.Machine) int {
	m, ok := mm.(*machine)
	if !ok {
		return 0
	}
	return m.failures
}

// PendingUnlocks returns how many distinct unlock notices this machine has
// seen or originated (ablation metric: lock-rollback traffic).
func PendingUnlocks(mm dynet.Machine) int {
	m, ok := mm.(*machine)
	if !ok {
		return 0
	}
	return len(m.pending)
}

// Stats is the per-machine instrumentation of the phase protocol.
type Stats struct {
	// Phases is how many phases the machine entered (last phase + 1).
	Phases int
	// Candidacies counts the times this node proceeded to LOCK (passed
	// COUNT1, or unconditionally under the skip-stage-1 ablation).
	Candidacies int
	// Failures counts candidacies rolled back after COUNT2.
	Failures int
	// LocksAccepted counts locks this node accepted from others or
	// itself.
	LocksAccepted int
	// UnlocksSeen counts distinct rollback notices received.
	UnlocksSeen int
	// DecidedPhase is the phase in which this node declared itself
	// leader (0 when it learned the leader by announcement or is
	// undecided; check the machine's Output for decision state).
	DecidedPhase int
}

// MachineStats extracts Stats from a Section 7 machine; ok is false for
// foreign machine types.
func MachineStats(mm dynet.Machine) (Stats, bool) {
	m, ok := mm.(*machine)
	if !ok {
		return Stats{}, false
	}
	return Stats{
		Phases:        m.curPhase + 1,
		Candidacies:   m.candidacies,
		Failures:      m.failures,
		LocksAccepted: m.locksAccepted,
		UnlocksSeen:   m.unlocksSeen,
		DecidedPhase:  m.decidedPhase,
	}, true
}
