package leader

import (
	"testing"

	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
	"dyndiam/internal/rng"
)

func runLeader(t *testing.T, n int, adv dynet.Adversary, extra map[string]int64, seed uint64, maxRounds int) (*dynet.Result, []dynet.Machine) {
	t.Helper()
	inputs := make([]int64, n)
	for v := range inputs {
		inputs[v] = int64(v % 2)
	}
	ms := dynet.NewMachines(Protocol{}, n, inputs, seed, extra)
	e := &dynet.Engine{Machines: ms, Adv: adv, Workers: 1}
	res, err := e.Run(maxRounds)
	if err != nil {
		t.Fatal(err)
	}
	return res, ms
}

func TestElectsMaxOnStar(t *testing.T) {
	const n = 16
	res, _ := runLeader(t, n, dynet.Static(graph.Star(n)), nil, 1, 400000)
	if !res.Done {
		t.Fatal("leader election did not terminate")
	}
	for v := 0; v < n; v++ {
		if res.Outputs[v] != n-1 {
			t.Errorf("node %d elected %d, want %d", v, res.Outputs[v], n-1)
		}
	}
}

func TestElectsMaxOnLine(t *testing.T) {
	const n = 24
	res, _ := runLeader(t, n, dynet.Static(graph.Line(n)), nil, 7, 2000000)
	if !res.Done {
		t.Fatal("leader election did not terminate on the line")
	}
	for v := 0; v < n; v++ {
		if res.Outputs[v] != n-1 {
			t.Errorf("node %d elected %d, want %d", v, res.Outputs[v], n-1)
		}
	}
}

func TestUnknownDWithApproximateN(t *testing.T) {
	// N' = 0.8N with c = 0.1 satisfies |N'-N|/N = 0.2 <= 1/3 - 0.1.
	const n = 20
	extra := map[string]int64{
		ExtraNPrime:    int64(0.8 * n),
		ExtraCPermille: 100,
	}
	src := rng.New(33)
	adv := dynet.AdversaryFunc(func(r int, _ []dynet.Action) *graph.Graph {
		return graph.RandomConnected(n, n, src.Split(uint64(r)))
	})
	res, _ := runLeader(t, n, adv, extra, 5, 1000000)
	if !res.Done {
		t.Fatal("did not terminate with approximate N'")
	}
	for v := 0; v < n; v++ {
		if res.Outputs[v] != n-1 {
			t.Errorf("node %d elected %d, want %d", v, res.Outputs[v], n-1)
		}
	}
}

func TestDynamicTopologyElection(t *testing.T) {
	// Changing low-diameter topology every round.
	const n = 32
	src := rng.New(8)
	adv := dynet.AdversaryFunc(func(r int, _ []dynet.Action) *graph.Graph {
		return graph.BoundedDiameterRandom(n, 6, n/2, src.Split(uint64(r)))
	})
	res, _ := runLeader(t, n, adv, nil, 11, 1000000)
	if !res.Done {
		t.Fatal("did not terminate on dynamic topology")
	}
	for v := 0; v < n; v++ {
		if res.Outputs[v] != n-1 {
			t.Errorf("node %d elected %d, want %d", v, res.Outputs[v], n-1)
		}
	}
}

// TestTimeScalesWithDiameterNotN is the Theorem 8 shape: with unknown D but
// a good N', the election on a *small-diameter* network must terminate in
// rounds proportional to D·polylog(N), far below N rounds when D << N.
func TestTimeScalesWithDiameterNotN(t *testing.T) {
	const n = 48
	res, _ := runLeader(t, n, dynet.Static(graph.Star(n)), nil, 2, 1000000)
	if !res.Done {
		t.Fatal("did not terminate")
	}
	// Star diameter is 2. The protocol should finish within early phases,
	// orders of magnitude below the pessimistic Θ(N · polylog) horizon.
	// Loose sanity cap: k·(alpha+beta)·polylog with the final D' small.
	k := 6 * 7 // KFor(48)
	cap := 40 * k * 10
	if res.Rounds > cap {
		t.Errorf("star election took %d rounds, want < %d (diameter-scaled)", res.Rounds, cap)
	}
}

// TestTwoStageLockingAblation: disabling the COUNT1 pre-check (the paper's
// explicit design point) produces rolled-back candidacies on a
// high-diameter network, while the two-stage protocol avoids them.
func TestTwoStageLockingAblation(t *testing.T) {
	const n = 32
	adv := graph.Line(n)

	failures := func(skip bool) int {
		extra := map[string]int64{}
		if skip {
			extra[ExtraSkipStage1] = 1
		}
		res, ms := runLeader(t, n, dynet.Static(adv), extra, 13, 3000000)
		if !res.Done {
			t.Fatal("ablation run did not terminate")
		}
		total := 0
		for _, m := range ms {
			total += FailedCandidacies(m)
		}
		return total
	}

	withStage1 := failures(false)
	withoutStage1 := failures(true)
	if withoutStage1 == 0 {
		t.Error("skip-stage1 ablation produced no failed candidacies on a line (expected rollbacks)")
	}
	if withStage1 > withoutStage1 {
		t.Errorf("two-stage locking produced more rollbacks (%d) than the ablation (%d)",
			withStage1, withoutStage1)
	}
}

func TestLockKeyRoundTrip(t *testing.T) {
	for _, k := range []lockKey{{0, 0}, {5, 3}, {1 << 15, 1000}, {42, 1<<20 - 1}} {
		if got := decodeLockKey(k.encode()); got != k {
			t.Errorf("decode(encode(%v)) = %v", k, got)
		}
	}
}

func TestScheduleLocate(t *testing.T) {
	m := &machine{alpha: 2, beta: 1, k: 4, w: 3}
	// Phase 0: D'=1, ls = 2*(1+3) = 8, lc = 1*4*(1+3) = 16; total 48.
	cases := []struct {
		r               int
		phase, sub, idx int
	}{
		{1, 0, subSpread, 0},
		{8, 0, subSpread, 7},
		{9, 0, subCount1, 0},
		{24, 0, subCount1, 15},
		{25, 0, subLock, 0},
		{32, 0, subLock, 7},
		{33, 0, subCount2, 0},
		{48, 0, subCount2, 15},
		{49, 1, subSpread, 0}, // phase 1 begins
	}
	for _, c := range cases {
		p, s, i := m.locate(c.r)
		if p != c.phase || s != c.sub || i != c.idx {
			t.Errorf("locate(%d) = (%d, %d, %d), want (%d, %d, %d)",
				c.r, p, s, i, c.phase, c.sub, c.idx)
		}
	}
}

func TestMessagesWithinBudget(t *testing.T) {
	const n = 64
	inputs := make([]int64, n)
	ms := dynet.NewMachines(Protocol{}, n, inputs, 3, nil)
	e := &dynet.Engine{Machines: ms, Adv: dynet.Static(graph.Ring(n)), Workers: 1}
	// The engine enforces the budget; any oversized message errors out.
	if _, err := e.Run(20000); err != nil {
		t.Fatalf("budget violation or engine error: %v", err)
	}
}

func BenchmarkLeaderElectionStar(b *testing.B) {
	const n = 32
	for i := 0; i < b.N; i++ {
		inputs := make([]int64, n)
		ms := dynet.NewMachines(Protocol{}, n, inputs, uint64(i), nil)
		e := &dynet.Engine{Machines: ms, Adv: dynet.Static(graph.Star(n)), Workers: 1}
		res, err := e.Run(500000)
		if err != nil || !res.Done {
			b.Fatalf("res=%v err=%v", res, err)
		}
	}
}

func TestMachineStats(t *testing.T) {
	const n = 12
	ms := dynet.NewMachines(Protocol{}, n, make([]int64, n), 5, nil)
	e := &dynet.Engine{Machines: ms, Adv: dynet.Static(graph.Star(n)), Workers: 1}
	res, err := e.Run(500000)
	if err != nil || !res.Done {
		t.Fatalf("res=%v err=%v", res, err)
	}
	winner, wok := MachineStats(ms[n-1])
	if !wok {
		t.Fatal("stats extraction failed")
	}
	if winner.Candidacies < 1 {
		t.Error("winner recorded no candidacy")
	}
	if winner.Failures != 0 {
		t.Errorf("winner rolled back %d candidacies on a star", winner.Failures)
	}
	if winner.Phases < 1 {
		t.Error("no phases recorded")
	}
	// Every node accepted the winner's lock (or its own, for the winner).
	totalLocks := 0
	for _, m := range ms {
		st, ok := MachineStats(m)
		if !ok {
			t.Fatal("foreign machine")
		}
		totalLocks += st.LocksAccepted
	}
	if totalLocks < n/2 {
		t.Errorf("only %d locks accepted across %d nodes", totalLocks, n)
	}
	if _, ok := MachineStats(dynet.NewJunk(dynet.Configs(1, nil, 1, nil)[0], 0)); ok {
		t.Error("stats extracted from a foreign machine type")
	}
}

func TestElectsOnRotatingStar(t *testing.T) {
	// The rotating star has per-round diameter 2 but dynamic diameter
	// n-1: the protocol's doubling D' must climb to ~n before the counts
	// complete, and the election must still be correct.
	const n = 10
	adv := dynet.AdversaryFunc(func(r int, _ []dynet.Action) *graph.Graph {
		g := graph.New(n)
		center := r % n
		for v := 0; v < n; v++ {
			if v != center {
				g.AddEdge(center, v)
			}
		}
		return g
	})
	res, _ := runLeader(t, n, adv, nil, 3, 5000000)
	if !res.Done {
		t.Fatal("no termination on the rotating star")
	}
	for v := 0; v < n; v++ {
		if res.Outputs[v] != n-1 {
			t.Errorf("node %d elected %d, want %d", v, res.Outputs[v], n-1)
		}
	}
}
