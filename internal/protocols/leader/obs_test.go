package leader

import (
	"bytes"
	"testing"

	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
	"dyndiam/internal/obs"
)

// TestObservedRunEmitsPhaseAndLockEvents runs a full election with both the
// engine's and the protocol's sinks attached and checks the event stream
// carries the phase/lock story the ISSUE promises: subphase PhaseEnter
// spans, at least one candidacy, at least one lock acquisition, and a
// leader_declared marker — and that the stream exports to every format.
func TestObservedRunEmitsPhaseAndLockEvents(t *testing.T) {
	const n = 16
	inputs := make([]int64, n)
	ring := obs.NewRing(1 << 18)
	ms := dynet.NewMachines(Protocol{Obs: ring}, n, inputs, 1, nil)
	e := &dynet.Engine{Machines: ms, Adv: dynet.Static(graph.Star(n)), Workers: 1, Obs: ring}
	res, err := e.Run(400000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatal("election did not terminate")
	}

	counts := map[obs.Kind]int{}
	subSeen := map[string]bool{}
	leaderDeclared := false
	for _, ev := range ring.Events() {
		counts[ev.Kind]++
		if ev.Kind == obs.KindPhaseEnter {
			subSeen[ev.Name.String()] = true
		}
		if ev.Kind == obs.KindCustom && ev.Name == keyLeader {
			leaderDeclared = true
		}
	}
	for _, sub := range []string{"spread", "count1", "lock", "count2"} {
		if !subSeen[sub] {
			t.Errorf("no PhaseEnter for subphase %q", sub)
		}
	}
	if counts[obs.KindLockAcquire] == 0 {
		t.Error("no LockAcquire events in a completed election")
	}
	if c := counts[obs.KindCustom]; c == 0 {
		t.Error("no candidacy/leader markers")
	}
	if !leaderDeclared {
		t.Error("winning candidate did not emit leader_declared")
	}
	if counts[obs.KindRoundStart] == 0 || counts[obs.KindSend] == 0 {
		t.Error("engine events missing from the merged stream")
	}

	// The stream must survive every exporter (the ring dropped nothing
	// only if sized generously; drops are fine for exporting).
	events := ring.Events()
	var jsonl bytes.Buffer
	if err := obs.WriteJSONL(&jsonl, events); err != nil {
		t.Fatalf("jsonl export: %v", err)
	}
	back, err := obs.ReadJSONL(&jsonl)
	if err != nil || len(back) != len(events) {
		t.Fatalf("jsonl reimport: %v (%d of %d events)", err, len(back), len(events))
	}
	var trace bytes.Buffer
	if err := obs.WriteChromeTrace(&trace, events); err != nil {
		t.Fatalf("chrome export: %v", err)
	}
	if trace.Len() == 0 {
		t.Fatal("empty chrome trace")
	}
}
