// Package rng provides deterministic, splittable pseudo-random streams.
//
// The paper's lower bounds hold for public-coin protocols: every coin flipped
// by every node is visible to both Alice and Bob. We model public coins as a
// pure function of (seed, node, round, draw index), so any party holding the
// seed can regenerate any node's coin tape without communicating. The same
// property makes the sequential and the parallel simulation engines produce
// bit-identical executions.
//
// The generator is SplitMix64 (Steele, Lea, Flood 2014), chosen because each
// stream is derived by pure arithmetic on its key — there is no shared state
// to synchronize across goroutines.
package rng

import "math"

const (
	gamma  = 0x9E3779B97F4A7C15 // golden-ratio increment of SplitMix64
	mixK0  = 0xBF58476D1CE4E5B9
	mixK1  = 0x94D049BB133111EB
	keyMix = 0xD6E8FEB86659FD93 // finalizer used when combining key parts
)

// mix64 is the SplitMix64 finalizer: a bijective scrambler on 64-bit words.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * mixK0
	z = (z ^ (z >> 27)) * mixK1
	return z ^ (z >> 31)
}

// combine folds word w into key k, giving independent streams for distinct
// key tuples.
func combine(k, w uint64) uint64 {
	return mix64((k+gamma)^(w*keyMix)) + gamma
}

// Source is a deterministic random stream. The zero value is a valid stream
// seeded with 0. Source is not safe for concurrent use; derive one Source per
// goroutine with Split or At.
type Source struct {
	state uint64
}

// New returns a stream seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: mix64(seed)}
}

// Split derives an independent child stream labeled by words. The parent is
// unchanged: Split is a pure function of (parent seed, words), which is what
// allows Alice and Bob to regenerate any node's coins from the public seed.
func (s *Source) Split(words ...uint64) *Source {
	k := s.state
	for _, w := range words {
		k = combine(k, w)
	}
	return &Source{state: mix64(k)}
}

// At is shorthand for the per-node per-round stream used by protocol
// machines: stream (node, round) of this source.
func (s *Source) At(node, round int) *Source {
	return s.Split(uint64(node)+1, uint64(round)+1)
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += gamma
	return mix64(s.state)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		//lint:allow panicfree mirrors math/rand.Intn's contract; a non-positive bound is a programming error
		panic("rng: Intn with non-positive n")
	}
	// Rejection sampling to avoid modulo bias.
	max := uint64(n)
	limit := math.MaxUint64 - math.MaxUint64%max
	for {
		v := s.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Float64 returns a uniform float in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (s *Source) Bool() bool { return s.Uint64()&1 == 1 }

// Prob returns true with probability p.
func (s *Source) Prob(p float64) bool { return s.Float64() < p }

// Exp returns an exponentially distributed variate with rate 1, used by the
// Mosk-Aoyama–Shah counting subroutine. The value is strictly positive.
func (s *Source) Exp() float64 {
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return -math.Log(u)
}

// Perm returns a uniform random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
