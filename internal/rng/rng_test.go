package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	t.Parallel()
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	t.Parallel()
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("distinct seeds produced %d equal draws in 100", same)
	}
}

func TestSplitIsPure(t *testing.T) {
	t.Parallel()
	root := New(7)
	before := *root
	c1 := root.Split(3, 9)
	if *root != before {
		t.Fatal("Split mutated the parent stream")
	}
	c2 := root.Split(3, 9)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("identical Split labels gave different streams at draw %d", i)
		}
	}
}

func TestSplitLabelsIndependent(t *testing.T) {
	t.Parallel()
	root := New(7)
	c1 := root.Split(1, 2)
	c2 := root.Split(2, 1)
	c3 := root.Split(1)
	equal12, equal13 := 0, 0
	for i := 0; i < 200; i++ {
		v1, v2, v3 := c1.Uint64(), c2.Uint64(), c3.Uint64()
		if v1 == v2 {
			equal12++
		}
		if v1 == v3 {
			equal13++
		}
	}
	if equal12 > 0 || equal13 > 0 {
		t.Errorf("split streams collide: (1,2)vs(2,1)=%d, (1,2)vs(1)=%d", equal12, equal13)
	}
}

func TestAtMatchesSplit(t *testing.T) {
	t.Parallel()
	root := New(99)
	a := root.At(5, 17)
	b := root.Split(6, 18)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("At(5,17) differs from Split(6,18)")
		}
	}
}

func TestIntnRange(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, n uint8) bool {
		nn := int(n%100) + 1
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.Intn(nn)
			if v < 0 || v >= nn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnUniformish(t *testing.T) {
	t.Parallel()
	s := New(123)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := draws / n
	for v, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("Intn(%d): value %d drawn %d times, want about %d", n, v, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	t.Parallel()
	s := New(5)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v outside [0,1)", f)
		}
	}
}

func TestExpMoments(t *testing.T) {
	t.Parallel()
	s := New(77)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := s.Exp()
		if v <= 0 {
			t.Fatalf("Exp returned non-positive %v", v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("Exp mean = %v, want about 1", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("Exp variance = %v, want about 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, n uint8) bool {
		nn := int(n % 64)
		p := New(seed).Perm(nn)
		if len(p) != nn {
			return false
		}
		seen := make([]bool, nn)
		for _, v := range p {
			if v < 0 || v >= nn || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProbExtremes(t *testing.T) {
	t.Parallel()
	s := New(3)
	for i := 0; i < 100; i++ {
		if s.Prob(0) {
			t.Fatal("Prob(0) returned true")
		}
		if !s.Prob(1.0000001) {
			t.Fatal("Prob(>1) returned false")
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Uint64()
	}
}

func BenchmarkSplitAt(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.At(i&1023, i>>10)
	}
}
