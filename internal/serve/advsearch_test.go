package serve

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestNormalizeAdvSearchDefaults(t *testing.T) {
	t.Parallel()
	n, err := normalize(KindAdvSearch, Params{})
	if err != nil {
		t.Fatal(err)
	}
	want := Params{N: 10, Seed: 1, Proto: "cflood_known", Mode: "greedy", Horizon: 20, Restarts: 2, Steps: 8}
	if !reflect.DeepEqual(n, want) {
		t.Fatalf("defaults = %+v, want %+v", n, want)
	}
	// Fields other kinds read must be zeroed so equivalent submissions
	// share a cache entry.
	n, err = normalize(KindAdvSearch, Params{Trials: 50, Dim: "drop", Figure: 2, TargetDiam: 3, Proto: "leaderelect"})
	if err != nil {
		t.Fatal(err)
	}
	if n.Trials != 0 || n.Dim != "" || n.Figure != 0 || n.TargetDiam != 0 {
		t.Fatalf("irrelevant fields survived normalization: %+v", n)
	}
	if n.Proto != "leaderelect" {
		t.Fatalf("proto not preserved: %+v", n)
	}
}

func TestNormalizeAdvSearchRejects(t *testing.T) {
	t.Parallel()
	cases := []Params{
		{Proto: "nosuch"},
		{Mode: "annealing"},
		{N: 3},
		{N: maxAdvN + 1},
		{Horizon: 400},
		{Restarts: maxAdvRestarts + 1},
		{Steps: maxAdvSteps + 1},
	}
	for _, p := range cases {
		if _, err := normalize(KindAdvSearch, p); err == nil {
			t.Errorf("normalize accepted %+v", p)
		}
	}
}

// TestAdvSearchJobEndToEnd runs a tiny real search through the full
// Submit/Wait path and checks the served body is the deterministic
// Result envelope with the hardness table.
func TestAdvSearchJobEndToEnd(t *testing.T) {
	t.Parallel()
	s := New(Config{Workers: 1, JobBudget: 2 * time.Minute})
	defer s.Close()

	p := Params{N: 8, Restarts: 1, Steps: 2, Seed: 7, Proto: "cflood_known"}
	view, outcome, err := s.Submit(KindAdvSearch, p)
	if err != nil || outcome != SubmitNew {
		t.Fatalf("Submit: view=%+v outcome=%v err=%v", view, outcome, err)
	}
	body, final, ok := s.Wait(view.Key)
	if !ok || final.Status != StatusDone {
		t.Fatalf("Wait: status=%s err=%q", final.Status, final.Err)
	}
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindAdvSearch || !strings.Contains(res.Table, "Adversary synthesis") {
		t.Fatalf("unexpected result envelope: kind=%s table=%q", res.Kind, res.Table)
	}
	if res.Params.Proto != "cflood_known" || res.Params.Mode != "greedy" {
		t.Fatalf("params not normalized in echo: %+v", res.Params)
	}

	// The same submission is one job: dup outcome, byte-identical body.
	view2, outcome2, err := s.Submit(KindAdvSearch, p)
	if err != nil || outcome2 != SubmitDup || view2.Key != view.Key {
		t.Fatalf("resubmit: outcome=%v key=%s err=%v", outcome2, view2.Key, err)
	}
	body2, _, _ := s.Wait(view2.Key)
	if string(body) != string(body2) {
		t.Fatal("cached body differs from first execution")
	}
}
