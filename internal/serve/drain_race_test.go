package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestDrainSubmitRaceNoLostJobs pins the drain-vs-submit contract under
// the race detector: with Drain() racing 32 concurrent Submits, every
// submission either is refused with ErrDraining or becomes a job that
// runs to completion — an accepted entry can never be stranded in the
// queue when the workers exit. The stub executor sleeps briefly so the
// drain window overlaps real execution, and the whole dance repeats to
// cover both orderings of the race.
func TestDrainSubmitRaceNoLostJobs(t *testing.T) {
	t.Parallel()
	const submitters = 32
	for iter := 0; iter < 6; iter++ {
		iter := iter
		t.Run(fmt.Sprintf("iter%d", iter), func(t *testing.T) {
			exec := func(Kind, Params) ([]byte, error) {
				time.Sleep(time.Millisecond)
				return []byte(`{"ok":true}` + "\n"), nil
			}
			s := New(Config{Workers: 2, QueueCap: submitters * 2, Exec: exec})
			defer s.Close()

			type result struct {
				view    JobView
				outcome SubmitOutcome
				err     error
			}
			results := make([]result, submitters)
			start := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(submitters + 1)
			for i := 0; i < submitters; i++ {
				i := i
				go func() {
					defer wg.Done()
					<-start
					// Distinct seeds → distinct content keys → no dedupe;
					// every accepted submission is its own job.
					v, o, err := s.Submit(KindGapTable, Params{Sizes: []int{8}, Seed: uint64(1000*iter + i + 1)})
					results[i] = result{v, o, err}
				}()
			}
			go func() {
				defer wg.Done()
				<-start
				s.Drain()
			}()
			close(start)
			wg.Wait() // Drain() has returned: every accepted job must be terminal

			accepted, refused := 0, 0
			for i, r := range results {
				switch {
				case r.err == ErrDraining:
					refused++
				case r.err != nil:
					t.Fatalf("submit %d: unexpected error %v", i, r.err)
				case r.outcome == SubmitNew:
					accepted++
					done := make(chan JobView, 1)
					go func() {
						_, view, ok := s.Wait(r.view.Key)
						if ok {
							done <- view
						}
						close(done)
					}()
					select {
					case view, ok := <-done:
						if !ok {
							t.Fatalf("submit %d: accepted key %s vanished from the cache", i, r.view.Key)
						}
						if view.Status != StatusDone {
							t.Fatalf("submit %d: accepted job ended %s (err %q), want done", i, view.Status, view.Err)
						}
					case <-time.After(30 * time.Second):
						t.Fatalf("submit %d: accepted job never reached a terminal status — lost in the drain", i)
					}
				default:
					// SubmitDup is impossible (distinct keys) and the queue
					// can hold every submitter, so rejection means a bug.
					t.Fatalf("submit %d: unexpected outcome %v", i, r.outcome)
				}
			}
			if accepted+refused != submitters {
				t.Fatalf("accounted for %d+%d of %d submissions", accepted, refused, submitters)
			}
		})
	}
}
