package serve

import (
	"encoding/json"
	"fmt"

	"dyndiam/internal/advsearch"
	"dyndiam/internal/faults"
	"dyndiam/internal/harness"
)

// Result is the envelope every job marshals into. It echoes the
// normalized parameters so a cached body is self-describing, renders the
// human table alongside the structured rows, and is marshaled exactly
// once per cache entry — every fetch of the same key serves the same
// bytes.
type Result struct {
	Kind   Kind        `json:"kind"`
	Params Params      `json:"params"`
	Table  string      `json:"table,omitempty"`
	Data   interface{} `json:"data,omitempty"`
}

// advSearchConfig maps a normalized advsearch job onto the search
// config. Kept next to the dispatch so the two stay one translation.
func advSearchConfig(p Params) advsearch.Config {
	return advsearch.Config{
		Proto:    advsearch.Proto(p.Proto),
		N:        p.N,
		Horizon:  p.Horizon,
		Mode:     advsearch.Mode(p.Mode),
		Restarts: p.Restarts,
		Steps:    p.Steps,
		Seed:     p.Seed,
	}
}

// normalizeSpecs expands a degradation job's (Dim, Rates) into the fault
// Specs of the sweep, one row per rate in submission order.
func normalizeSpecs(p Params) ([]faults.Spec, error) {
	specs := make([]faults.Spec, 0, len(p.Rates))
	for _, r := range p.Rates {
		s, err := harness.FaultSpecFor(p.Dim, r)
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// run executes one normalized job against the harness and marshals the
// Result envelope. It is the Server's default exec hook; tests swap in
// stubs to drive the scheduling machinery without paying for sweeps.
func run(kind Kind, p Params) ([]byte, error) {
	res := Result{Kind: kind, Params: p}
	switch kind {
	case KindLeaderReliability:
		rel, err := harness.LeaderReliability(p.N, p.TargetDiam, p.Trials, nil)
		if err != nil {
			return nil, err
		}
		res.Table = harness.FormatReliability("LEADER", rel)
		res.Data = rel
	case KindLeaderDegradation, KindCFloodDegradation:
		specs, err := normalizeSpecs(p)
		if err != nil {
			return nil, err
		}
		cfg := harness.DegradationConfig{
			N: p.N, TargetDiam: p.TargetDiam, Trials: p.Trials,
			Seed: p.Seed, Specs: specs,
		}
		var rows []harness.DegradationRow
		var name string
		if kind == KindLeaderDegradation {
			rows, err = harness.LeaderDegradation(cfg)
			name = "LEADER"
		} else {
			rows, err = harness.CFloodDegradation(cfg)
			name = "CFLOOD"
		}
		if err != nil {
			return nil, err
		}
		res.Table = harness.FormatDegradationTable(name, rows).String()
		res.Data = harness.DegradationRowsJSON(rows)
	case KindGapTable:
		rows, err := harness.GapTable(p.Sizes, p.TargetDiam, p.Seed)
		if err != nil {
			return nil, err
		}
		res.Table = harness.FormatGapTable(rows).String()
		res.Data = rows
	case KindReduction:
		rows, err := harness.CFloodReduction(p.Qs, p.N, p.Seed)
		if err != nil {
			return nil, err
		}
		res.Table = harness.FormatReductionTable("E1 reduction", rows).String()
		res.Data = rows
	case KindAdvSearch:
		rep, err := advsearch.Search(advSearchConfig(p), nil, advsearch.Options{})
		if err != nil {
			return nil, err
		}
		res.Table = advsearch.FormatHardnessTable([]advsearch.HardnessRow{advsearch.RowFromReport(rep)}).String()
		res.Data = rep
	case KindFigure:
		var fig string
		var err error
		switch p.Figure {
		case 1:
			fig, err = harness.Figure1()
		case 2:
			fig, err = harness.Figure2()
		default:
			fig, err = harness.Figure3()
		}
		if err != nil {
			return nil, err
		}
		res.Table = fig
	default:
		return nil, fmt.Errorf("serve: unknown job kind %q", kind)
	}
	body, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("serve: marshaling %s result: %v", kind, err)
	}
	return append(body, '\n'), nil
}
