package serve

import (
	"sync"
	"time"

	"dyndiam/internal/harness"
	"dyndiam/internal/obs"
)

// Per-job flight recorder: a bounded ring of lifecycle events plus the
// metric snapshot taken when the job reached a terminal status. The
// recorder exists so that a panicking, timed-out, or failed job leaves a
// browsable record behind — GET /debug/jobs/{key} dumps it as JSON,
// /debug/jobs/{key}/trace as Chrome trace-event JSON for Perfetto.
//
// Clocks: job lifecycle spans ("queue_wait", "submit" -> execution start;
// "execute", start -> terminal status) sit on a milliseconds-since-server-
// start clock, the one layer of the repo allowed to read wall time (under
// the servedeterminism lint-allow framework). When Config.CaptureSweepSpans
// is set, the harness's sweep-cell spans (Track 1, cell-index clock) are
// folded in as well, so one Perfetto load shows queue-wait -> execution ->
// per-cell activity on separate track lanes.

// Interned span names of the job lifecycle lane (Track 2).
var (
	keyQueueWait = obs.Intern("queue_wait")
	keyExecute   = obs.Intern("execute")
)

// jobTrack is the flight recorder's Track id for job lifecycle spans,
// following the repo convention: 0 = engine, 1 = harness cells, 2 = serve.
const jobTrack = 2

// flightRecorder captures one entry's event history. Emissions come from
// the submitting HTTP goroutine and the worker goroutine, so the ring is
// guarded by its own mutex (obs.Ring itself is single-goroutine).
type flightRecorder struct {
	mu      sync.Mutex
	ring    *obs.Ring
	metrics []obs.MetricPoint // server metric snapshot at terminal status
}

func newFlightRecorder(cap int) *flightRecorder {
	return &flightRecorder{ring: obs.NewRing(cap)}
}

// emit appends one event to the bounded ring.
func (f *flightRecorder) emit(ev obs.Event) {
	f.mu.Lock()
	f.ring.Emit(ev)
	f.mu.Unlock()
}

// emitAll folds a captured event stream (e.g. the harness's sweep spans)
// into the ring.
func (f *flightRecorder) emitAll(evs []obs.Event) {
	f.mu.Lock()
	for _, ev := range evs {
		f.ring.Emit(ev)
	}
	f.mu.Unlock()
}

// finish stores the terminal metric snapshot.
func (f *flightRecorder) finish(metrics []obs.MetricPoint) {
	f.mu.Lock()
	f.metrics = metrics
	f.mu.Unlock()
}

// snapshot returns a copy of the recorded events plus the drop count and
// the terminal metric snapshot (nil while the job is still in flight).
func (f *flightRecorder) snapshot() (events []obs.Event, dropped int, metrics []obs.MetricPoint) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ring.Events(), f.ring.Dropped(), f.metrics
}

// nowMs positions an event on the recorder's clock: milliseconds since
// server start. Wall time here is presentation only — it never feeds back
// into experiment code, whose own clocks stay deterministic.
func (s *Server) nowMs() int32 {
	return int32(time.Since(s.start).Milliseconds()) //lint:allow servedeterminism flight-recorder timeline, never observed by experiment code
}

// recordQueued opens the queue_wait span for a freshly enqueued entry.
// Callers hold s.mu (entry creation is atomic with enqueue).
func (s *Server) recordQueued(e *entry) {
	if e.flight == nil {
		return
	}
	e.flight.emit(obs.Event{Kind: obs.KindSpanBegin, Round: s.nowMs(), Track: jobTrack, A: -1, Name: keyQueueWait})
}

// recordRunning closes queue_wait and opens execute.
func (s *Server) recordRunning(e *entry) {
	if e.flight == nil {
		return
	}
	t := s.nowMs()
	e.flight.emit(obs.Event{Kind: obs.KindSpanEnd, Round: t, Track: jobTrack, A: -1, Name: keyQueueWait})
	e.flight.emit(obs.Event{Kind: obs.KindSpanBegin, Round: t, Track: jobTrack, A: -1, Name: keyExecute})
}

// recordTerminal closes the execute span (A = 0 done, 1 failed), folds in
// any captured sweep spans, and stores the terminal metric snapshot.
func (s *Server) recordTerminal(e *entry, failed bool, sweepSpans []obs.Event) {
	if e.flight == nil {
		return
	}
	if len(sweepSpans) > 0 {
		e.flight.emitAll(sweepSpans)
	}
	outcome := int64(0)
	if failed {
		outcome = 1
	}
	e.flight.emit(obs.Event{Kind: obs.KindSpanEnd, Round: s.nowMs(), Track: jobTrack, A: outcome, Name: keyExecute})
	e.flight.finish(s.MetricsRegistry().Snapshot())
}

// captureSweepSpans wraps one exec call with harness sweep-span capture.
// The harness's capture buffer is process-global, so capturing jobs are
// serialized under execSerial — CaptureSweepSpans is a debugging mode that
// trades job concurrency for per-cell visibility; leave it off on
// throughput-serving instances.
func (s *Server) captureSweepSpans(kind Kind, p Params) ([]byte, error, []obs.Event) {
	s.execSerial.Lock()
	defer s.execSerial.Unlock()
	harness.EnableSweepSpans()
	body, err := s.execGuarded(kind, p)
	return body, err, harness.TakeSweepSpans()
}
