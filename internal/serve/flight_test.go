package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dyndiam/internal/harness"
	"dyndiam/internal/obs"
)

// debugJobDump mirrors handleDebugJob's response body.
type debugJobDump struct {
	Job     JobView           `json:"job"`
	Events  []flightEventJSON `json:"events"`
	Dropped int               `json:"dropped"`
	Metrics []obs.MetricPoint `json:"metrics"`
}

// submitAndWait pushes one job through the HTTP submit path and blocks
// until it reaches a terminal status, returning its content key.
func submitAndWait(t *testing.T, s *Server, ts *httptest.Server, body string) string {
	t.Helper()
	resp, data := postJob(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d body %s", resp.StatusCode, data)
	}
	var view JobView
	if err := json.Unmarshal(data, &view); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Wait(view.Key); !ok {
		t.Fatalf("Wait(%q) lost the job", view.Key)
	}
	return view.Key
}

func getDebugDump(t *testing.T, ts *httptest.Server, key string) debugJobDump {
	t.Helper()
	resp, data := getPath(t, ts, "/debug/jobs/"+key)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug dump status = %d body %s", resp.StatusCode, data)
	}
	var dump debugJobDump
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatal(err)
	}
	return dump
}

func TestFlightRecorderLifecycle(t *testing.T) {
	t.Parallel()
	s, ts := newHTTPServer(t, Config{Workers: 1})
	key := submitAndWait(t, s, ts, `{"kind":"figure","params":{"figure":2}}`)

	// The index lists the job with its event count.
	resp, data := getPath(t, ts, "/debug/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("index status = %d", resp.StatusCode)
	}
	var index struct {
		Jobs []debugJobSummary `json:"jobs"`
	}
	if err := json.Unmarshal(data, &index); err != nil {
		t.Fatal(err)
	}
	if len(index.Jobs) != 1 || index.Jobs[0].Key != key {
		t.Fatalf("index = %+v", index.Jobs)
	}
	if index.Jobs[0].Status != StatusDone || index.Jobs[0].Events != 4 || index.Jobs[0].Dropped != 0 {
		t.Errorf("index row = %+v, want done with 4 events, 0 dropped", index.Jobs[0])
	}

	// The dump holds the full lifecycle: queue_wait open/close, execute
	// open/close, all on the job lane, on a nondecreasing ms clock.
	dump := getDebugDump(t, ts, key)
	if dump.Job.Status != StatusDone {
		t.Fatalf("dumped job = %+v", dump.Job)
	}
	want := []struct {
		kind, name string
		a          int64
	}{
		{"span_begin", "queue_wait", -1},
		{"span_end", "queue_wait", -1},
		{"span_begin", "execute", -1},
		{"span_end", "execute", 0}, // 0 = completed without error
	}
	if len(dump.Events) != len(want) {
		t.Fatalf("events = %+v, want %d lifecycle events", dump.Events, len(want))
	}
	for i, w := range want {
		ev := dump.Events[i]
		if ev.Kind != w.kind || ev.Name != w.name || ev.A != w.a || ev.Track != jobTrack {
			t.Errorf("event[%d] = %+v, want kind %s name %s a %d on track %d", i, ev, w.kind, w.name, w.a, jobTrack)
		}
		if i > 0 && ev.T < dump.Events[i-1].T {
			t.Errorf("event[%d] at t=%d before event[%d] at t=%d", i, ev.T, i-1, dump.Events[i-1].T)
		}
	}

	// The terminal metric snapshot reflects the finished job.
	if len(dump.Metrics) == 0 {
		t.Fatal("terminal metric snapshot missing")
	}
	byName := map[string]int64{}
	for _, p := range dump.Metrics {
		byName[p.Name] = p.Value
	}
	if byName["serve_harness_executions_total"] != 1 {
		t.Errorf("snapshot executions = %d, want 1", byName["serve_harness_executions_total"])
	}
	if byName["serve_jobs_failed_total"] != 0 {
		t.Errorf("snapshot failed = %d, want 0", byName["serve_jobs_failed_total"])
	}

	// The trace endpoint serves Chrome trace-event JSON with both spans
	// as complete ("X") events.
	resp, data = getPath(t, ts, "/debug/jobs/"+key+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d", resp.StatusCode)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, data)
	}
	spans := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "X" {
			spans[ev.Name] = true
		}
	}
	if !spans["queue_wait"] || !spans["execute"] {
		t.Errorf("trace spans = %v, want queue_wait and execute as X events", spans)
	}
}

func TestFlightRecorderFailedJob(t *testing.T) {
	t.Parallel()
	s, ts := newHTTPServer(t, Config{
		Workers: 1,
		Exec: func(Kind, Params) ([]byte, error) {
			return nil, errors.New("synthetic sweep failure")
		},
	})
	key := submitAndWait(t, s, ts, `{"kind":"figure","params":{"figure":2}}`)

	dump := getDebugDump(t, ts, key)
	if dump.Job.Status != StatusFailed || !strings.Contains(dump.Job.Err, "synthetic sweep failure") {
		t.Fatalf("dumped job = %+v, want failed with the exec error", dump.Job)
	}
	last := dump.Events[len(dump.Events)-1]
	if last.Kind != "span_end" || last.Name != "execute" || last.A != 1 {
		t.Errorf("terminal event = %+v, want execute span_end with a=1 (failed)", last)
	}
	for _, p := range dump.Metrics {
		if p.Name == "serve_jobs_failed_total" && p.Value != 1 {
			t.Errorf("snapshot failed = %d, want 1", p.Value)
		}
	}
}

func TestFlightRecorderRingBounds(t *testing.T) {
	t.Parallel()
	// A cap of 2 keeps only the newest two of the four lifecycle events
	// and reports the rest as dropped instead of growing.
	s, ts := newHTTPServer(t, Config{Workers: 1, FlightRecorderCap: 2})
	key := submitAndWait(t, s, ts, `{"kind":"figure","params":{"figure":2}}`)

	dump := getDebugDump(t, ts, key)
	if len(dump.Events) != 2 || dump.Dropped != 2 {
		t.Fatalf("events = %d dropped = %d, want 2 kept / 2 dropped", len(dump.Events), dump.Dropped)
	}
	last := dump.Events[len(dump.Events)-1]
	if last.Kind != "span_end" || last.Name != "execute" {
		t.Errorf("newest event = %+v, want the terminal execute span_end", last)
	}
}

func TestFlightRecorderDisabled(t *testing.T) {
	t.Parallel()
	s, ts := newHTTPServer(t, Config{Workers: 1, FlightRecorderCap: -1})
	key := submitAndWait(t, s, ts, `{"kind":"figure","params":{"figure":2}}`)

	// The index still lists the job, just without events.
	resp, data := getPath(t, ts, "/debug/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("index status = %d", resp.StatusCode)
	}
	var index struct {
		Jobs []debugJobSummary `json:"jobs"`
	}
	if err := json.Unmarshal(data, &index); err != nil {
		t.Fatal(err)
	}
	if len(index.Jobs) != 1 || index.Jobs[0].Events != 0 {
		t.Fatalf("index = %+v, want the job with 0 events", index.Jobs)
	}

	for _, path := range []string{"/debug/jobs/" + key, "/debug/jobs/" + key + "/trace"} {
		resp, data := getPath(t, ts, path)
		if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(data), "disabled") {
			t.Errorf("GET %s = %d %s, want 404 explaining recording is disabled", path, resp.StatusCode, data)
		}
	}
}

func TestFlightRecorderUnknownKey(t *testing.T) {
	t.Parallel()
	_, ts := newHTTPServer(t, Config{})
	for _, path := range []string{"/debug/jobs/no-such-key", "/debug/jobs/no-such-key/trace"} {
		resp, data := getPath(t, ts, path)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d %s, want 404", path, resp.StatusCode, data)
		}
	}
}

func TestFlightRecorderCaptureSweepSpans(t *testing.T) {
	t.Parallel()
	// The stub runs a real two-cell harness sweep so the capture window
	// opened by captureSweepSpans has cells to record.
	s, ts := newHTTPServer(t, Config{
		Workers:           1,
		CaptureSweepSpans: true,
		Exec: func(kind Kind, p Params) ([]byte, error) {
			if _, err := harness.GapTable([]int{8, 12}, 2, 5); err != nil {
				return nil, err
			}
			return stubBody(kind, p), nil
		},
	})
	key := submitAndWait(t, s, ts, `{"kind":"figure","params":{"figure":2}}`)

	dump := getDebugDump(t, ts, key)
	// 4 lifecycle events + 2 cells x (begin, end).
	if len(dump.Events) != 8 {
		t.Fatalf("events = %+v, want 8 (lifecycle + 2 sweep cells)", dump.Events)
	}
	var cells []flightEventJSON
	for _, ev := range dump.Events {
		if ev.Track == 1 {
			cells = append(cells, ev)
		}
	}
	if len(cells) != 4 {
		t.Fatalf("sweep-lane events = %+v, want 4", cells)
	}
	for i, ev := range cells {
		wantKind := "span_begin"
		if i%2 == 1 {
			wantKind = "span_end"
		}
		cell := int32(i / 2)
		if ev.Kind != wantKind || ev.Name != "sweep_cell" || ev.Node != cell || ev.A <= 0 {
			t.Errorf("sweep event[%d] = %+v, want %s for cell %d with positive rounds", i, ev, wantKind, cell)
		}
	}
	// The folded spans land before the terminal execute span_end, so the
	// Perfetto view nests cells inside the job's execution window.
	last := dump.Events[len(dump.Events)-1]
	if last.Name != "execute" || last.Kind != "span_end" {
		t.Errorf("newest event = %+v, want the terminal execute span_end", last)
	}
}
