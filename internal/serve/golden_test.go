package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"dyndiam/internal/harness"
)

// TestGoldenGapTableMatchesDirectHarness runs one real (non-stubbed) job
// through the full HTTP path and checks the served rows are deep-equal
// to a direct internal/harness run with the same seed — the service adds
// scheduling and caching, never a different answer.
func TestGoldenGapTableMatchesDirectHarness(t *testing.T) {
	t.Parallel()
	s := New(Config{Workers: 1}) // default exec: the real harness
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	sizes, targetDiam, seed := []int{8, 12}, 2, uint64(5)
	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		jsonBody(t, SubmitRequest{Kind: KindGapTable, Params: Params{
			Sizes: sizes, TargetDiam: targetDiam, Seed: seed,
		}}))
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	body, final, ok := s.Wait(view.Key)
	if !ok || final.Status != StatusDone {
		t.Fatalf("job = (%+v, %v): %s", final, ok, final.Err)
	}

	var envelope struct {
		Kind   Kind            `json:"kind"`
		Params Params          `json:"params"`
		Table  string          `json:"table"`
		Data   json.RawMessage `json:"data"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Kind != KindGapTable || envelope.Table == "" {
		t.Fatalf("envelope = kind %q, table %d bytes", envelope.Kind, len(envelope.Table))
	}
	var served []harness.GapRow
	if err := json.Unmarshal(envelope.Data, &served); err != nil {
		t.Fatal(err)
	}

	direct, err := harness.GapTable(sizes, targetDiam, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(served, direct) {
		t.Errorf("served rows diverge from direct harness run:\nserved %+v\ndirect %+v", served, direct)
	}
	if got := harness.FormatGapTable(direct).String(); got != envelope.Table {
		t.Errorf("served table diverges from direct render:\n%s\nvs\n%s", envelope.Table, got)
	}
}

// jsonBody marshals v for an http.Post body.
func jsonBody(t *testing.T, v interface{}) *bytes.Reader {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(data)
}
