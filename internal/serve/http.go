package serve

import (
	"encoding/json"
	"net/http"
	"strconv"

	"dyndiam/internal/obs"
)

// SubmitRequest is the POST /jobs body.
type SubmitRequest struct {
	Kind   Kind   `json:"kind"`
	Params Params `json:"params"`
}

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// Handler builds the service's HTTP API:
//
//	POST /jobs             submit a job; 202 new, 200 duplicate,
//	                       400 invalid, 429 (+Retry-After) queue full
//	GET  /jobs             list all entries in submission order
//	GET  /jobs/{id}        one entry's status
//	GET  /jobs/{id}/result the stored result body (202 while pending,
//	                       500 for failed jobs)
//	GET  /metrics          Prometheus text exposition
//	GET  /healthz          liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encoding a value we just built cannot fail, and the status line is
	// already out — nothing useful to do with an error here.
	_ = enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid request body: " + err.Error()})
		return
	}
	view, outcome, err := s.Submit(req.Kind, req.Params)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	switch outcome {
	case SubmitNew:
		writeJSON(w, http.StatusAccepted, view)
	case SubmitDup:
		writeJSON(w, http.StatusOK, view)
	default: // SubmitRejected: queue full
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSec))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "job queue full; retry later"})
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobView `json:"jobs"`
	}{Jobs: s.Jobs()})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	view, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job key"})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	body, view, ok := s.ResultBody(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job key"})
		return
	}
	switch view.Status {
	case StatusDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		// Stored bytes are served verbatim: byte-identical across fetches
		// and across deduplicated submissions.
		_, _ = w.Write(body)
	case StatusFailed:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: view.Err})
	default:
		writeJSON(w, http.StatusAccepted, view)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.WriteHeader(http.StatusOK)
	_ = obs.WriteMetricsText(w, s.MetricsRegistry())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}
