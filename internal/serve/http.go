package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"dyndiam/internal/obs"
)

// SubmitRequest is the POST /jobs body.
type SubmitRequest struct {
	Kind   Kind   `json:"kind"`
	Params Params `json:"params"`
}

// errorBody is the JSON error envelope of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

// Handler builds the service's HTTP API:
//
//	POST /jobs             submit a job; 202 new, 200 duplicate,
//	                       400 invalid, 429 (+Retry-After) queue full
//	GET  /jobs             list all entries in submission order
//	GET  /jobs/{id}        one entry's status
//	GET  /jobs/{id}/result the stored result body (202 while pending,
//	                       500 for failed jobs)
//	GET  /metrics          Prometheus text exposition
//	GET  /healthz          liveness probe (200 while the process lives)
//	GET  /readyz           readiness probe (503 once draining begins)
//	GET  /debug/jobs       flight-recorder index (key, status, event counts)
//	GET  /debug/jobs/{id}  one job's flight recording: lifecycle events,
//	                       drop count, terminal metric snapshot
//	GET  /debug/jobs/{id}/trace  the same recording as Chrome trace-event
//	                       JSON (load in ui.perfetto.dev)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /debug/jobs", s.handleDebugJobs)
	mux.HandleFunc("GET /debug/jobs/{id}", s.handleDebugJob)
	mux.HandleFunc("GET /debug/jobs/{id}/trace", s.handleDebugJobTrace)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encoding a value we just built cannot fail, and the status line is
	// already out — nothing useful to do with an error here.
	_ = enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid request body: " + err.Error()})
		return
	}
	view, outcome, err := s.Submit(req.Kind, req.Params)
	if errors.Is(err, ErrDraining) {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	switch outcome {
	case SubmitNew:
		writeJSON(w, http.StatusAccepted, view)
	case SubmitDup:
		writeJSON(w, http.StatusOK, view)
	default: // SubmitRejected: queue full
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSec))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "job queue full; retry later"})
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobView `json:"jobs"`
	}{Jobs: s.Jobs()})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	view, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job key"})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	body, view, ok := s.ResultBody(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job key"})
		return
	}
	switch view.Status {
	case StatusDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		// Stored bytes are served verbatim: byte-identical across fetches
		// and across deduplicated submissions.
		_, _ = w.Write(body)
	case StatusFailed:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: view.Err})
	default:
		writeJSON(w, http.StatusAccepted, view)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.WriteHeader(http.StatusOK)
	_ = obs.WriteMetricsText(w, s.MetricsRegistry())
}

// flightEventJSON is the wire form of one recorded event: the obs JSONL
// field layout with the interned name resolved.
type flightEventJSON struct {
	Kind  string `json:"kind"`
	T     int32  `json:"t"` // ms since server start (job lane) or cell index (sweep lane)
	Node  int32  `json:"node,omitempty"`
	Track int32  `json:"track"`
	A     int64  `json:"a"`
	B     int64  `json:"b,omitempty"`
	Name  string `json:"name,omitempty"`
}

func flightEventsJSON(events []obs.Event) []flightEventJSON {
	out := make([]flightEventJSON, len(events))
	for i, ev := range events {
		out[i] = flightEventJSON{
			Kind: ev.Kind.String(), T: ev.Round, Node: ev.Node,
			Track: ev.Track, A: ev.A, B: ev.B, Name: ev.Name.String(),
		}
	}
	return out
}

// debugJobSummary is one row of the flight-recorder index.
type debugJobSummary struct {
	Key     string `json:"key"`
	Kind    Kind   `json:"kind"`
	Status  Status `json:"status"`
	Events  int    `json:"events"`
	Dropped int    `json:"dropped"`
}

func (s *Server) handleDebugJobs(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	entries := make([]*entry, 0, len(s.order))
	rows := make([]debugJobSummary, 0, len(s.order))
	for _, key := range s.order {
		e := s.cache[key]
		entries = append(entries, e)
		rows = append(rows, debugJobSummary{Key: e.key, Kind: e.kind, Status: e.status})
	}
	s.mu.Unlock()
	for i, e := range entries {
		if e.flight != nil {
			events, dropped, _ := e.flight.snapshot()
			rows[i].Events, rows[i].Dropped = len(events), dropped
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []debugJobSummary `json:"jobs"`
	}{Jobs: rows})
}

// debugEntry resolves one flight-recorder entry, writing the error
// response itself when the key is unknown or recording is off.
func (s *Server) debugEntry(w http.ResponseWriter, r *http.Request) (*entry, JobView, bool) {
	s.mu.Lock()
	e, ok := s.cache[r.PathValue("id")]
	var view JobView
	if ok {
		view = e.view()
	}
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job key"})
		return nil, JobView{}, false
	}
	if e.flight == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "flight recording disabled (FlightRecorderCap < 0)"})
		return nil, JobView{}, false
	}
	return e, view, true
}

func (s *Server) handleDebugJob(w http.ResponseWriter, r *http.Request) {
	e, view, ok := s.debugEntry(w, r)
	if !ok {
		return
	}
	events, dropped, metrics := e.flight.snapshot()
	writeJSON(w, http.StatusOK, struct {
		Job     JobView           `json:"job"`
		Events  []flightEventJSON `json:"events"`
		Dropped int               `json:"dropped"`
		Metrics []obs.MetricPoint `json:"metrics,omitempty"`
	}{Job: view, Events: flightEventsJSON(events), Dropped: dropped, Metrics: metrics})
}

func (s *Server) handleDebugJobTrace(w http.ResponseWriter, r *http.Request) {
	e, _, ok := s.debugEntry(w, r)
	if !ok {
		return
	}
	events, _, _ := e.flight.snapshot()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = obs.WriteChromeTrace(w, events)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

// handleReadyz is the readiness probe: 200 while the service accepts new
// jobs, 503 once a drain has begun. Liveness (/healthz) stays 200
// through the drain so an orchestrator unroutes the instance without
// killing it mid-run-down.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("draining\n"))
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}
