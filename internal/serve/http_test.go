package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newHTTPServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := newStubServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getPath(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestHTTPSubmitPollFetchLifecycle(t *testing.T) {
	t.Parallel()
	_, ts := newHTTPServer(t, Config{})

	resp, data := postJob(t, ts, `{"kind":"figure","params":{"figure":2}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d body %s", resp.StatusCode, data)
	}
	var view JobView
	if err := json.Unmarshal(data, &view); err != nil {
		t.Fatal(err)
	}
	if view.Key == "" || view.Kind != KindFigure || view.Params.Figure != 2 {
		t.Fatalf("submit view = %+v", view)
	}

	// Poll until done (result answers 202 while pending).
	deadline := time.Now().Add(10 * time.Second)
	var body []byte
	for {
		resp, data := getPath(t, ts, "/jobs/"+view.Key+"/result")
		if resp.StatusCode == http.StatusOK {
			body = data
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("poll status = %d body %s", resp.StatusCode, data)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if want := stubBody(KindFigure, view.Params); !bytes.Equal(body, want) {
		t.Fatalf("result body = %q want %q", body, want)
	}

	// Status endpoint agrees.
	resp, data = getPath(t, ts, "/jobs/"+view.Key)
	var status JobView
	if err := json.Unmarshal(data, &status); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || status.Status != StatusDone {
		t.Fatalf("status = %d %+v", resp.StatusCode, status)
	}

	// Resubmitting the same job is a 200 cache hit with the same key.
	resp, data = postJob(t, ts, `{"kind":"figure","params":{"figure":2}}`)
	var dup JobView
	if err := json.Unmarshal(data, &dup); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || dup.Key != view.Key {
		t.Fatalf("resubmit = %d %+v", resp.StatusCode, dup)
	}

	// The listing shows the one entry.
	_, data = getPath(t, ts, "/jobs")
	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].Key != view.Key {
		t.Fatalf("list = %+v", list)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	t.Parallel()
	_, ts := newHTTPServer(t, Config{})
	for _, body := range []string{
		`{not json`,
		`{"kind":"no_such_kind","params":{}}`,
		`{"kind":"figure","params":{"figure":9}}`,
		`{"kind":"figure","unknown_field":1}`,
	} {
		resp, data := postJob(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d body %s", body, resp.StatusCode, data)
		}
		var e errorBody
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error envelope = %s", body, data)
		}
	}
	for _, path := range []string{"/jobs/deadbeef", "/jobs/deadbeef/result"} {
		resp, _ := getPath(t, ts, path)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status = %d want 404", path, resp.StatusCode)
		}
	}
	// Wrong method on a known path.
	resp, err := http.Post(ts.URL+"/healthz", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz = %d want 405", resp.StatusCode)
	}
}

func TestHTTPBackpressure429(t *testing.T) {
	t.Parallel()
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	s, ts := newHTTPServer(t, Config{
		Workers:       1,
		QueueCap:      1,
		RetryAfterSec: 7,
		Exec: func(kind Kind, p Params) ([]byte, error) {
			started <- struct{}{}
			<-release
			return stubBody(kind, p), nil
		},
	})
	defer close(release)

	resp, data := postJob(t, ts, `{"kind":"leader_reliability","params":{"n":8}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d %s", resp.StatusCode, data)
	}
	<-started // the worker holds job 1; the queue is empty again
	resp, _ = postJob(t, ts, `{"kind":"leader_reliability","params":{"n":12}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit = %d", resp.StatusCode)
	}
	// Queue full: immediate 429 with the configured Retry-After.
	resp, data = postJob(t, ts, `{"kind":"leader_reliability","params":{"n":16}}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit = %d %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q want 7", got)
	}
	// A duplicate of an in-flight job still dedupes even while the queue
	// is full — backpressure only applies to new work.
	resp, _ = postJob(t, ts, `{"kind":"leader_reliability","params":{"n":8}}`)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("in-flight duplicate = %d want 200", resp.StatusCode)
	}
	if got := counterValue(t, s, "serve_queue_rejected_total"); got != 1 {
		t.Errorf("rejected = %d want 1", got)
	}
}

// TestHTTPSingleflightRace is the acceptance stress: under -race, 64
// concurrent identical HTTP submissions must execute the harness exactly
// once and every client must fetch byte-identical result bodies.
func TestHTTPSingleflightRace(t *testing.T) {
	t.Parallel()
	const k = 64
	s, ts := newHTTPServer(t, Config{
		Workers: 4,
		Exec: func(kind Kind, p Params) ([]byte, error) {
			time.Sleep(20 * time.Millisecond)
			return stubBody(kind, p), nil
		},
	})
	var wg sync.WaitGroup
	keys := make([]string, k)
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/jobs", "application/json",
				strings.NewReader(`{"kind":"gap_table","params":{"sizes":[8,12],"seed":3}}`))
			if err != nil {
				errs[i] = err
				return
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, data)
				return
			}
			var view JobView
			if err := json.Unmarshal(data, &view); err != nil {
				errs[i] = err
				return
			}
			keys[i] = view.Key
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submitter %d: %v", i, err)
		}
	}
	for i := 1; i < k; i++ {
		if keys[i] != keys[0] {
			t.Fatalf("submitter %d got key %s want %s", i, keys[i], keys[0])
		}
	}
	if _, view, ok := s.Wait(keys[0]); !ok || view.Status != StatusDone {
		t.Fatalf("wait = (%+v, %v)", view, ok)
	}
	// All k clients fetch; bodies must be byte-identical.
	bodies := make([][]byte, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/jobs/" + keys[0] + "/result")
			if err != nil {
				errs[i] = err
				return
			}
			bodies[i], errs[i] = io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("fetch status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < k; i++ {
		if errs[i] != nil {
			t.Fatalf("fetcher %d: %v", i, errs[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("fetcher %d body differs", i)
		}
	}
	if got := counterValue(t, s, "serve_harness_executions_total"); got != 1 {
		t.Fatalf("executions = %d want 1", got)
	}
	if hits := counterValue(t, s, "serve_cache_hits_total"); hits != k-1 {
		t.Errorf("cache hits = %d want %d", hits, k-1)
	}
}

func TestHTTPMetricsAndHealthz(t *testing.T) {
	t.Parallel()
	s, ts := newHTTPServer(t, Config{})
	view, _, err := s.Submit(KindFigure, Params{Figure: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Wait(view.Key)

	resp, data := getPath(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	text := string(data)
	for _, want := range []string{
		"serve_requests_total 1",
		"serve_harness_executions_total 1",
		"serve_cache_misses_total 1",
		"serve_job_latency_ms_count 1",
		"serve_queue_depth 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}

	resp, data = getPath(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK || string(data) != "ok\n" {
		t.Errorf("/healthz = %d %q", resp.StatusCode, data)
	}

	resp, data = getPath(t, ts, "/readyz")
	if resp.StatusCode != http.StatusOK || string(data) != "ok\n" {
		t.Errorf("/readyz = %d %q before drain", resp.StatusCode, data)
	}
}

// TestHTTPDrainOrdering pins the graceful-drain sequence: once Drain
// begins, /readyz flips to 503 and new submissions are rejected (503),
// while existing entries stay readable and the queued-but-unstarted job
// still runs to completion before Drain returns — so a checkpoint taken
// after Drain includes it. Close would have dropped that queued job;
// Drain must not.
func TestHTTPDrainOrdering(t *testing.T) {
	t.Parallel()
	gate := make(chan struct{})
	started := make(chan Kind, 8)
	s, ts := newHTTPServer(t, Config{
		Workers:  1,
		QueueCap: 8,
		Exec: func(kind Kind, p Params) ([]byte, error) {
			started <- kind
			<-gate
			return stubBody(kind, p), nil
		},
	})

	// Job A occupies the single worker (blocked in exec); job B sits
	// queued behind it.
	respA, dataA := postJob(t, ts, `{"kind":"figure","params":{"figure":1}}`)
	if respA.StatusCode != http.StatusAccepted {
		t.Fatalf("submit A = %d body %s", respA.StatusCode, dataA)
	}
	var viewA JobView
	if err := json.Unmarshal(dataA, &viewA); err != nil {
		t.Fatal(err)
	}
	<-started // A is in-flight
	respB, dataB := postJob(t, ts, `{"kind":"figure","params":{"figure":2}}`)
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("submit B = %d body %s", respB.StatusCode, dataB)
	}
	var viewB JobView
	if err := json.Unmarshal(dataB, &viewB); err != nil {
		t.Fatal(err)
	}

	drained := make(chan struct{})
	go func() {
		s.Drain()
		close(drained)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("Drain never flipped the draining flag")
		}
		time.Sleep(time.Millisecond)
	}

	// Draining: readiness 503, liveness 200.
	resp, data := getPath(t, ts, "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || string(data) != "draining\n" {
		t.Errorf("/readyz during drain = %d %q", resp.StatusCode, data)
	}
	resp, data = getPath(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK || string(data) != "ok\n" {
		t.Errorf("/healthz during drain = %d %q", resp.StatusCode, data)
	}

	// New work is rejected with 503 ...
	resp, data = postJob(t, ts, `{"kind":"figure","params":{"figure":3}}`)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(data), "draining") {
		t.Errorf("new submit during drain = %d %q, want 503 draining", resp.StatusCode, data)
	}
	// ... but a duplicate of an admitted entry is still served from cache.
	resp, data = postJob(t, ts, `{"kind":"figure","params":{"figure":1}}`)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("dup submit during drain = %d %q, want 200", resp.StatusCode, data)
	}

	// Drain must not return while A is still in-flight and B is queued.
	select {
	case <-drained:
		t.Fatal("Drain returned before in-flight work finished")
	default:
	}

	close(gate)
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain did not return after jobs were released")
	}

	// Both the in-flight job and the queued-but-unstarted one completed.
	for _, key := range []string{viewA.Key, viewB.Key} {
		view, ok := s.Job(key)
		if !ok || view.Status != StatusDone {
			t.Errorf("job %s after drain = %+v, want done", key, view)
		}
	}
	// The post-drain checkpoint includes the drained work.
	results := s.CachedResults()
	if len(results) != 2 {
		t.Fatalf("checkpoint after drain has %d results, want 2", len(results))
	}
	// Readiness stays down after the drain completes.
	resp, _ = getPath(t, ts, "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz after drain = %d, want 503", resp.StatusCode)
	}
}
