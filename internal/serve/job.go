package serve

import (
	"fmt"

	"dyndiam/internal/advsearch"
	"dyndiam/internal/harness"
)

// Kind names one experiment job type the service can execute.
type Kind string

// The served experiment kinds. Each maps onto one internal/harness entry
// point; see run (exec.go) for the dispatch.
const (
	// KindLeaderReliability repeats the Section 7 leader election across
	// seeded trials and reports the empirical error rate (E3 reliability).
	KindLeaderReliability Kind = "leader_reliability"
	// KindLeaderDegradation sweeps the leader election across one fault
	// dimension (drop/dup/corrupt/crash/edgecut) at the requested rates.
	KindLeaderDegradation Kind = "leader_degradation"
	// KindCFloodDegradation sweeps unknown-diameter confirmed flooding
	// across one fault dimension.
	KindCFloodDegradation Kind = "cflood_degradation"
	// KindGapTable produces the E4 known-vs-unknown-diameter gap table.
	KindGapTable Kind = "gap_table"
	// KindReduction runs the Theorem 6 two-party reduction experiment
	// (E1) for each requested promise parameter q.
	KindReduction Kind = "reduction"
	// KindFigure renders one of the paper's construction figures (1-3).
	KindFigure Kind = "figure"
	// KindAdvSearch runs the adversary-synthesis search for one protocol
	// and reports discovered-vs-constructed hardness. Long searches fit
	// the serving model naturally: deterministic, content-addressed, and
	// resumable through the job cache.
	KindAdvSearch Kind = "advsearch"
)

// Kinds lists every served kind in a stable order.
func Kinds() []Kind {
	return []Kind{
		KindLeaderReliability,
		KindLeaderDegradation,
		KindCFloodDegradation,
		KindGapTable,
		KindReduction,
		KindFigure,
		KindAdvSearch,
	}
}

// Params carries every tunable a job kind can read. One flat struct (no
// maps, fixed field order) keeps the canonical JSON encoding — and with
// it the content key — deterministic. normalize zeroes the fields a kind
// does not read, so submissions that differ only in irrelevant fields
// land on the same cache entry.
type Params struct {
	// N is the network size (reliability, degradations) or the chain
	// length of the reduction instance (reduction).
	N int `json:"n,omitempty"`
	// TargetDiam is the adversary family's target dynamic diameter.
	TargetDiam int `json:"target_diam,omitempty"`
	// Trials is the per-row trial count of repeated-seed kinds.
	Trials int `json:"trials,omitempty"`
	// Seed roots the public coins (gap, reduction) or the fault plans
	// (degradations). Reliability trials use the shared harness trial
	// seeds and ignore it.
	Seed uint64 `json:"seed,omitempty"`
	// Sizes are the network sizes of a gap table.
	Sizes []int `json:"sizes,omitempty"`
	// Qs are the cycle-promise parameters of a reduction run (odd, >= 3).
	Qs []int `json:"qs,omitempty"`
	// Dim is the fault dimension of a degradation sweep.
	Dim string `json:"dim,omitempty"`
	// Rates are the fault rates of a degradation sweep (include 0 for
	// the clean anchor row).
	Rates []float64 `json:"rates,omitempty"`
	// Figure selects the construction figure (1, 2, or 3).
	Figure int `json:"figure,omitempty"`
	// Proto is the protocol objective of an adversary search.
	Proto string `json:"proto,omitempty"`
	// Mode is the adversary-search strategy (random, greedy, evolve).
	Mode string `json:"mode,omitempty"`
	// Horizon is the scripted schedule length of an adversary search.
	Horizon int `json:"horizon,omitempty"`
	// Restarts and Steps bound an adversary search's budget.
	Restarts int `json:"restarts,omitempty"`
	Steps    int `json:"steps,omitempty"`
}

// Service-protection bounds: the service computes everything it serves,
// so parameter validation is the only thing standing between one request
// and an arbitrarily large computation.
const (
	maxN      = 512
	maxTrials = 2000
	maxSizes  = 16
	maxQ      = 257
	maxRates  = 32
	// Adversary searches evaluate restarts*(steps+1) protocol runs, so
	// their bounds are tighter than the single-run kinds'.
	maxAdvN        = 32
	maxAdvRestarts = 16
	maxAdvSteps    = 64
)

// normalize applies kind defaults, validates the service bounds, and
// zeroes every field the kind does not read. The returned Params is what
// gets hashed into the content key and echoed in results, so two
// requests that normalize equally are one job.
func normalize(kind Kind, p Params) (Params, error) {
	switch kind {
	case KindLeaderReliability:
		return normalizeTrialKind(kind, p, false)
	case KindLeaderDegradation, KindCFloodDegradation:
		return normalizeTrialKind(kind, p, true)
	case KindGapTable:
		n := Params{Sizes: p.Sizes, TargetDiam: p.TargetDiam, Seed: p.Seed}
		if len(n.Sizes) == 0 {
			n.Sizes = []int{16, 32}
		}
		if len(n.Sizes) > maxSizes {
			return n, fmt.Errorf("serve: at most %d sizes per gap table, got %d", maxSizes, len(n.Sizes))
		}
		for _, s := range n.Sizes {
			if s < 4 || s > maxN {
				return n, fmt.Errorf("serve: gap table size %d out of range [4, %d]", s, maxN)
			}
		}
		if err := normalizeDiam(&n); err != nil {
			return n, err
		}
		if n.Seed == 0 {
			n.Seed = 1
		}
		return n, nil
	case KindReduction:
		n := Params{N: p.N, Qs: p.Qs, Seed: p.Seed}
		if n.N == 0 {
			n.N = 2
		}
		if n.N < 1 || n.N > 8 {
			return n, fmt.Errorf("serve: reduction chain length %d out of range [1, 8]", n.N)
		}
		if len(n.Qs) == 0 {
			n.Qs = []int{9, 17}
		}
		if len(n.Qs) > maxSizes {
			return n, fmt.Errorf("serve: at most %d qs per reduction, got %d", maxSizes, len(n.Qs))
		}
		for _, q := range n.Qs {
			if q < 3 || q > maxQ || q%2 == 0 {
				return n, fmt.Errorf("serve: reduction q %d must be odd in [3, %d]", q, maxQ)
			}
		}
		if n.Seed == 0 {
			n.Seed = 1
		}
		return n, nil
	case KindAdvSearch:
		n := Params{
			N: p.N, Seed: p.Seed, Proto: p.Proto, Mode: p.Mode,
			Horizon: p.Horizon, Restarts: p.Restarts, Steps: p.Steps,
		}
		if n.N == 0 {
			n.N = 10
		}
		if n.N < 4 || n.N > maxAdvN {
			return n, fmt.Errorf("serve: adversary-search size %d out of range [4, %d]", n.N, maxAdvN)
		}
		if n.Seed == 0 {
			n.Seed = 1
		}
		if n.Proto == "" {
			n.Proto = string(advsearch.ProtoCFloodKnown)
		}
		if _, err := advsearch.ParseProto(n.Proto); err != nil {
			return n, err
		}
		if n.Mode == "" {
			n.Mode = string(advsearch.ModeGreedy)
		}
		if n.Horizon == 0 {
			n.Horizon = 2 * n.N
		}
		if n.Horizon < 1 || n.Horizon > 4*n.N {
			return n, fmt.Errorf("serve: adversary-search horizon %d out of range [1, %d]", n.Horizon, 4*n.N)
		}
		if n.Restarts == 0 {
			n.Restarts = 2
		}
		if n.Restarts < 0 || n.Restarts > maxAdvRestarts {
			return n, fmt.Errorf("serve: adversary-search restarts %d out of range [0, %d]", n.Restarts, maxAdvRestarts)
		}
		if n.Steps == 0 {
			n.Steps = 8
		}
		if n.Steps < 1 || n.Steps > maxAdvSteps {
			return n, fmt.Errorf("serve: adversary-search steps %d out of range [1, %d]", n.Steps, maxAdvSteps)
		}
		// The search config owns the rest of the validation (mode
		// vocabulary, budget shape); normalize it once here so bad
		// submissions fail at admission, not execution.
		if _, err := advSearchConfig(n).Normalize(); err != nil {
			return n, err
		}
		return n, nil
	case KindFigure:
		n := Params{Figure: p.Figure}
		if n.Figure == 0 {
			n.Figure = 1
		}
		if n.Figure < 1 || n.Figure > 3 {
			return n, fmt.Errorf("serve: figure %d out of range [1, 3]", n.Figure)
		}
		return n, nil
	}
	return Params{}, fmt.Errorf("serve: unknown job kind %q", kind)
}

// normalizeTrialKind handles the repeated-trial kinds (reliability and
// the two degradations), which share the N/TargetDiam/Trials core.
func normalizeTrialKind(kind Kind, p Params, degradation bool) (Params, error) {
	n := Params{N: p.N, TargetDiam: p.TargetDiam, Trials: p.Trials}
	if n.N == 0 {
		n.N = 16
	}
	if n.N < 4 || n.N > maxN {
		return n, fmt.Errorf("serve: network size %d out of range [4, %d]", n.N, maxN)
	}
	if n.Trials == 0 {
		n.Trials = 6
	}
	if n.Trials < 1 || n.Trials > maxTrials {
		return n, fmt.Errorf("serve: trials %d out of range [1, %d]", n.Trials, maxTrials)
	}
	if err := normalizeDiam(&n); err != nil {
		return n, err
	}
	if !degradation {
		return n, nil
	}
	n.Seed = p.Seed
	if n.Seed == 0 {
		n.Seed = 1
	}
	n.Dim = p.Dim
	if n.Dim == "" {
		n.Dim = "drop"
	}
	if _, err := harness.FaultSpecFor(n.Dim, 0); err != nil {
		return n, err
	}
	n.Rates = p.Rates
	if len(n.Rates) == 0 {
		n.Rates = []float64{0, 0.05, 0.2}
	}
	if len(n.Rates) > maxRates {
		return n, fmt.Errorf("serve: at most %d rates per degradation sweep, got %d", maxRates, len(n.Rates))
	}
	for _, r := range n.Rates {
		if r < 0 || r > 1 {
			return n, fmt.Errorf("serve: fault rate %v out of range [0, 1]", r)
		}
	}
	if _, err := normalizeSpecs(n); err != nil {
		return n, err
	}
	return n, nil
}

// normalizeDiam defaults and validates the target diameter shared by the
// network-family kinds.
func normalizeDiam(p *Params) error {
	if p.TargetDiam == 0 {
		p.TargetDiam = 4
	}
	if p.TargetDiam < 1 || p.TargetDiam > maxN {
		return fmt.Errorf("serve: target diameter %d out of range [1, %d]", p.TargetDiam, maxN)
	}
	return nil
}

// jobKey computes the content address of a normalized (kind, params)
// pair. Normalization has already collapsed equivalent submissions, so
// equal keys mean byte-identical results.
func jobKey(kind Kind, p Params) (string, error) {
	return harness.CanonicalJobKey(string(kind), p)
}
