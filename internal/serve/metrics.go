package serve

import (
	"runtime"
	"sync"
	"sync/atomic"

	"dyndiam/internal/obs"
)

// latencyBoundsMs are the job-latency histogram bucket edges in
// milliseconds. Package-level so every materialized Registry shares one
// layout (obs histograms merge positionally).
var latencyBoundsMs = []int64{1, 5, 25, 100, 500, 2500, 10000}

// metrics holds the serving layer's own counters. An obs.Registry is
// single-goroutine by contract, while HTTP handlers and workers update
// these concurrently — so the live values are atomics (plus one mutex
// for the histogram), and MetricsRegistry materializes a fresh Registry
// per scrape from a consistent read of them.
type metrics struct {
	requests   atomic.Int64 // submissions accepted into Submit (valid or not)
	executions atomic.Int64 // harness executions actually started
	cacheHits  atomic.Int64 // submissions answered by an existing entry
	cacheMiss  atomic.Int64 // submissions that created a new entry or were rejected
	rejected   atomic.Int64 // submissions bounced by a full queue
	failed     atomic.Int64 // jobs that completed with an error

	lat latencyHist
}

// latencyHist accumulates job wall-clock latencies under its own mutex,
// bucket-compatible with the obs histogram it folds into at scrape time.
type latencyHist struct {
	mu     sync.Mutex
	counts []int64 // len(latencyBoundsMs)+1, trailing +Inf bucket
	sum    int64
	n      int64
}

func (l *latencyHist) observe(ms int64) {
	l.mu.Lock()
	if l.counts == nil {
		l.counts = make([]int64, len(latencyBoundsMs)+1)
	}
	i := 0
	for i < len(latencyBoundsMs) && ms > latencyBoundsMs[i] {
		i++
	}
	l.counts[i]++
	l.sum += ms
	l.n++
	l.mu.Unlock()
}

// fold copies the accumulated buckets into h via Histogram.AddBuckets.
func (l *latencyHist) fold(h *obs.Histogram) {
	l.mu.Lock()
	if l.counts != nil {
		h.AddBuckets(l.counts, l.sum, l.n)
	}
	l.mu.Unlock()
}

// MetricsRegistry materializes the server's counters into a fresh
// obs.Registry, ready for obs.WriteMetricsText. Each call snapshots the
// live atomics; the returned Registry is owned by the caller and safe to
// read single-threaded as usual.
func (s *Server) MetricsRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.Counter("serve_requests_total").Add(s.m.requests.Load())
	r.Counter("serve_harness_executions_total").Add(s.m.executions.Load())
	r.Counter("serve_cache_hits_total").Add(s.m.cacheHits.Load())
	r.Counter("serve_cache_misses_total").Add(s.m.cacheMiss.Load())
	r.Counter("serve_queue_rejected_total").Add(s.m.rejected.Load())
	r.Counter("serve_jobs_failed_total").Add(s.m.failed.Load())
	r.Gauge("serve_queue_depth").Set(int64(len(s.queue)))
	s.m.lat.fold(r.Histogram("serve_job_latency_ms", latencyBoundsMs))

	// Runtime introspection, materialized per scrape like everything else
	// here: goroutine count catches leaks in the worker/guard machinery,
	// heap and GC figures catch allocation regressions under sustained
	// load that the per-run AllocsPerRun tests cannot see. Reading
	// runtime stats is not a wall-clock read; the values are still
	// nondeterministic, which is fine — this registry is a monitoring
	// surface, never an experiment artifact.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("process_goroutines").Set(int64(runtime.NumGoroutine()))
	r.Gauge("process_heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	r.Gauge("process_heap_objects").Set(int64(ms.HeapObjects))
	r.Counter("process_gc_cycles_total").Add(int64(ms.NumGC))
	r.Counter("process_gc_pause_total_ns").Add(int64(ms.PauseTotalNs))
	return r
}
