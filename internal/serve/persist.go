package serve

// CachedResult is the checkpoint shape of one completed cache entry.
// cmd/dynserve saves the slice on shutdown and preloads it on -resume,
// so a restarted service answers previously computed keys from cache.
// Body is opaque bytes (base64 in the checkpoint file), not embedded
// JSON: re-encoding an embedded json.RawMessage inside the indented
// checkpoint envelope would re-indent it and break the byte identity
// between a preloaded result and the originally served one.
type CachedResult struct {
	Key    string `json:"key"`
	Kind   Kind   `json:"kind"`
	Params Params `json:"params"`
	Body   []byte `json:"body"`
}

// CachedResults exports every completed entry in insertion order.
// Pending and failed entries are omitted: a failed job should re-run
// after a restart, not replay its error.
func (s *Server) CachedResults() []CachedResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []CachedResult
	for _, key := range s.order {
		e := s.cache[key]
		if e.status != StatusDone {
			continue
		}
		out = append(out, CachedResult{
			Key: e.key, Kind: e.kind, Params: e.params,
			Body: append([]byte(nil), e.body...),
		})
	}
	return out
}

// Preload installs checkpointed results as completed cache entries and
// reports how many were accepted. Each record's key is recomputed from
// its (kind, params) — records whose stored key does not match (a
// tampered or stale checkpoint), fail validation, or collide with an
// existing entry are skipped rather than trusted.
func (s *Server) Preload(results []CachedResult) int {
	accepted := 0
	for _, cr := range results {
		np, err := normalize(cr.Kind, cr.Params)
		if err != nil {
			continue
		}
		key, err := jobKey(cr.Kind, np)
		if err != nil || key != cr.Key {
			continue
		}
		e := &entry{
			key: key, kind: cr.Kind, params: np, status: StatusDone,
			body: append([]byte(nil), cr.Body...),
			done: make(chan struct{}),
		}
		close(e.done)
		s.mu.Lock()
		if _, exists := s.cache[key]; !exists {
			s.cache[key] = e
			s.order = append(s.order, key)
			accepted++
		}
		s.mu.Unlock()
	}
	return accepted
}
