package serve

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dyndiam/internal/cliutil"
)

// stubBody is what the stub executors below return; distinct per params
// so caching bugs that cross keys are visible.
func stubBody(kind Kind, p Params) []byte {
	return []byte(fmt.Sprintf("{\"kind\":%q,\"n\":%d}\n", kind, p.N))
}

func newStubServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Exec == nil {
		cfg.Exec = func(kind Kind, p Params) ([]byte, error) {
			return stubBody(kind, p), nil
		}
	}
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

func counterValue(t *testing.T, s *Server, name string) int64 {
	t.Helper()
	for _, p := range s.MetricsRegistry().Snapshot() {
		if p.Name == name {
			return p.Value
		}
	}
	t.Fatalf("metric %s not exported", name)
	return 0
}

func TestNormalizeDefaultsAndZeroing(t *testing.T) {
	t.Parallel()
	// Defaults land for each kind.
	p, err := normalize(KindLeaderReliability, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 16 || p.TargetDiam != 4 || p.Trials != 6 {
		t.Errorf("reliability defaults = %+v", p)
	}
	if p.Seed != 0 || p.Dim != "" || p.Rates != nil {
		t.Errorf("reliability kept fields it does not read: %+v", p)
	}
	// Fields a kind does not read cannot split the cache key.
	a, err := normalize(KindFigure, Params{Figure: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := normalize(KindFigure, Params{Figure: 2, N: 64, Seed: 9, Dim: "drop"})
	if err != nil {
		t.Fatal(err)
	}
	ka, _ := jobKey(KindFigure, a)
	kb, _ := jobKey(KindFigure, b)
	if ka != kb {
		t.Error("irrelevant params split the content key")
	}
	// Degradation defaults include the clean anchor.
	d, err := normalize(KindCFloodDegradation, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Dim != "drop" || len(d.Rates) == 0 || d.Rates[0] != 0 || d.Seed != 1 {
		t.Errorf("degradation defaults = %+v", d)
	}
}

func TestNormalizeRejects(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		kind Kind
		p    Params
	}{
		{"unknown kind", Kind("nope"), Params{}},
		{"n too large", KindLeaderReliability, Params{N: 100000}},
		{"n too small", KindLeaderReliability, Params{N: 2}},
		{"trials too large", KindLeaderReliability, Params{Trials: 1000000}},
		{"bad dimension", KindLeaderDegradation, Params{Dim: "gamma-rays"}},
		{"rate out of range", KindLeaderDegradation, Params{Rates: []float64{2}}},
		{"even q", KindReduction, Params{Qs: []int{4}}},
		{"bad figure", KindFigure, Params{Figure: 9}},
		{"bad gap size", KindGapTable, Params{Sizes: []int{1}}},
	}
	for _, tc := range cases {
		if _, err := normalize(tc.kind, tc.p); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestSubmitLifecycleAndDedupe(t *testing.T) {
	t.Parallel()
	s := newStubServer(t, Config{})
	view, outcome, err := s.Submit(KindFigure, Params{Figure: 1})
	if err != nil || outcome != SubmitNew {
		t.Fatalf("first submit = (%v, %v, %v)", view, outcome, err)
	}
	body, final, ok := s.Wait(view.Key)
	if !ok || final.Status != StatusDone {
		t.Fatalf("wait = (%q, %+v, %v)", body, final, ok)
	}
	if string(body) != string(stubBody(KindFigure, final.Params)) {
		t.Fatalf("body = %q", body)
	}
	// Resubmission — with irrelevant fields set — is a cache hit.
	again, outcome, err := s.Submit(KindFigure, Params{Figure: 1, N: 99})
	if err != nil || outcome != SubmitDup || again.Key != view.Key {
		t.Fatalf("resubmit = (%v, %v, %v)", again, outcome, err)
	}
	if got := counterValue(t, s, "serve_harness_executions_total"); got != 1 {
		t.Errorf("executions = %d want 1", got)
	}
	if got := counterValue(t, s, "serve_cache_hits_total"); got != 1 {
		t.Errorf("cache hits = %d want 1", got)
	}
	// Listing preserves insertion order and finds the entry.
	jobs := s.Jobs()
	if len(jobs) != 1 || jobs[0].Key != view.Key {
		t.Errorf("jobs = %+v", jobs)
	}
}

func TestSubmitInvalidParams(t *testing.T) {
	t.Parallel()
	s := newStubServer(t, Config{})
	if _, _, err := s.Submit(Kind("nope"), Params{}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, _, err := s.Submit(KindFigure, Params{Figure: 7}); err == nil {
		t.Error("invalid figure accepted")
	}
	if len(s.Jobs()) != 0 {
		t.Error("invalid submissions left cache entries")
	}
}

func TestQueueFullRejectsWithoutBlocking(t *testing.T) {
	t.Parallel()
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s := newStubServer(t, Config{
		Workers:  1,
		QueueCap: 1,
		Exec: func(kind Kind, p Params) ([]byte, error) {
			started <- struct{}{}
			<-release
			return stubBody(kind, p), nil
		},
	})
	defer close(release)

	// First job occupies the only worker...
	a, outcome, err := s.Submit(KindLeaderReliability, Params{N: 8})
	if err != nil || outcome != SubmitNew {
		t.Fatalf("submit a = (%v, %v)", outcome, err)
	}
	<-started
	// ...second fills the queue...
	_, outcome, err = s.Submit(KindLeaderReliability, Params{N: 12})
	if err != nil || outcome != SubmitNew {
		t.Fatalf("submit b = (%v, %v)", outcome, err)
	}
	// ...third bounces immediately (this would deadlock if Submit blocked).
	done := make(chan SubmitOutcome, 1)
	go func() {
		_, o, _ := s.Submit(KindLeaderReliability, Params{N: 16})
		done <- o
	}()
	select {
	case o := <-done:
		if o != SubmitRejected {
			t.Fatalf("third submit = %v want SubmitRejected", o)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Submit blocked on a full queue")
	}
	if got := counterValue(t, s, "serve_queue_rejected_total"); got != 1 {
		t.Errorf("rejected = %d want 1", got)
	}
	// A rejected submission leaves no cache entry: retrying later works.
	if _, ok := s.Job(a.Key); !ok {
		t.Error("accepted entry vanished")
	}
	if len(s.Jobs()) != 2 {
		t.Errorf("cache has %d entries want 2", len(s.Jobs()))
	}
}

func TestSingleflightStress(t *testing.T) {
	t.Parallel()
	const k = 64
	var execs atomic.Int64
	s := newStubServer(t, Config{
		Workers: 4,
		Exec: func(kind Kind, p Params) ([]byte, error) {
			execs.Add(1)
			time.Sleep(20 * time.Millisecond) // hold the entry in-flight across submissions
			return stubBody(kind, p), nil
		},
	})
	keys := make(chan string, k)
	errs := make(chan error, k)
	for i := 0; i < k; i++ {
		go func() {
			view, _, err := s.Submit(KindGapTable, Params{Sizes: []int{8, 12}})
			if err != nil {
				errs <- err
				return
			}
			keys <- view.Key
		}()
	}
	var first string
	bodies := make(map[string]int)
	for i := 0; i < k; i++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case key := <-keys:
			if first == "" {
				first = key
			} else if key != first {
				t.Fatalf("submission %d got key %s want %s", i, key, first)
			}
		}
	}
	body, view, ok := s.Wait(first)
	if !ok || view.Status != StatusDone {
		t.Fatalf("wait = (%+v, %v)", view, ok)
	}
	// Every fetch serves the same bytes.
	for i := 0; i < k; i++ {
		b, _, _ := s.ResultBody(first)
		bodies[string(b)]++
	}
	if len(bodies) != 1 || bodies[string(body)] != k {
		t.Fatalf("bodies not byte-identical: %d distinct", len(bodies))
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("executor ran %d times want 1", got)
	}
	if got := counterValue(t, s, "serve_harness_executions_total"); got != 1 {
		t.Fatalf("executions counter = %d want 1", got)
	}
	if hits := counterValue(t, s, "serve_cache_hits_total"); hits != k-1 {
		t.Errorf("cache hits = %d want %d", hits, k-1)
	}
}

func TestJobBudgetDegradesToRecordedError(t *testing.T) {
	t.Parallel()
	hung := make(chan struct{})
	t.Cleanup(func() { close(hung) })
	s := newStubServer(t, Config{
		Workers:   1,
		JobBudget: 20 * time.Millisecond,
		Exec: func(kind Kind, p Params) ([]byte, error) {
			<-hung // never returns within the budget
			return nil, errors.New("unreachable")
		},
	})
	view, _, err := s.Submit(KindFigure, Params{Figure: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, final, ok := s.Wait(view.Key)
	if !ok || final.Status != StatusFailed {
		t.Fatalf("final = (%+v, %v) want failed", final, ok)
	}
	if !strings.Contains(final.Err, "exceeded budget") {
		t.Errorf("err = %q", final.Err)
	}
	// The worker survived the hung job and still serves new work.
	next, _, err := s.Submit(KindFigure, Params{Figure: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, v, ok := s.Wait(next.Key); !ok || v.Status != StatusFailed {
		t.Fatalf("post-hang job = (%+v, %v)", v, ok)
	}
	if got := counterValue(t, s, "serve_jobs_failed_total"); got != 2 {
		t.Errorf("failed = %d want 2", got)
	}
}

func TestPanicDegradesToRecordedError(t *testing.T) {
	t.Parallel()
	s := newStubServer(t, Config{
		Exec: func(Kind, Params) ([]byte, error) {
			var rows []int
			_ = rows[3] // out-of-range panic, as a buggy sweep would
			return nil, nil
		},
	})
	view, _, err := s.Submit(KindFigure, Params{Figure: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, final, ok := s.Wait(view.Key)
	if !ok || final.Status != StatusFailed || !strings.Contains(final.Err, "panicked") {
		t.Fatalf("final = (%+v, %v) want recorded panic", final, ok)
	}
}

func TestExecErrorRecorded(t *testing.T) {
	t.Parallel()
	s := newStubServer(t, Config{
		Exec: func(Kind, Params) ([]byte, error) {
			return nil, errors.New("sweep exploded")
		},
	})
	view, _, err := s.Submit(KindReduction, Params{})
	if err != nil {
		t.Fatal(err)
	}
	body, final, ok := s.Wait(view.Key)
	if !ok || final.Status != StatusFailed || final.Err != "sweep exploded" || body != nil {
		t.Fatalf("final = (%q, %+v, %v)", body, final, ok)
	}
}

func TestPreloadRoundtrip(t *testing.T) {
	t.Parallel()
	s := newStubServer(t, Config{})
	view, _, err := s.Submit(KindFigure, Params{Figure: 1})
	if err != nil {
		t.Fatal(err)
	}
	body, _, _ := s.Wait(view.Key)
	saved := s.CachedResults()
	if len(saved) != 1 || saved[0].Key != view.Key || string(saved[0].Body) != string(body) {
		t.Fatalf("saved = %+v", saved)
	}

	// Round-trip through an actual checkpoint file: the indented
	// envelope must not disturb the stored body bytes (the body is
	// opaque []byte precisely so re-indentation cannot touch it).
	ckpt := filepath.Join(t.TempDir(), "ckpt.json")
	if err := cliutil.SaveJSON(ckpt, saved); err != nil {
		t.Fatal(err)
	}
	var loaded []CachedResult
	if found, err := cliutil.LoadJSON(ckpt, &loaded); err != nil || !found {
		t.Fatalf("LoadJSON = (%v, %v)", found, err)
	}
	if len(loaded) != 1 || string(loaded[0].Body) != string(body) {
		t.Fatalf("checkpoint file changed the body: %q", loaded[0].Body)
	}

	// A fresh server preloads the checkpoint and serves it from cache.
	var execs atomic.Int64
	s2 := newStubServer(t, Config{Exec: func(kind Kind, p Params) ([]byte, error) {
		execs.Add(1)
		return stubBody(kind, p), nil
	}})
	if got := s2.Preload(loaded); got != 1 {
		t.Fatalf("preload = %d want 1", got)
	}
	again, outcome, err := s2.Submit(KindFigure, Params{Figure: 1})
	if err != nil || outcome != SubmitDup {
		t.Fatalf("post-preload submit = (%v, %v)", outcome, err)
	}
	b, v, ok := s2.ResultBody(again.Key)
	if !ok || v.Status != StatusDone || string(b) != string(body) {
		t.Fatalf("preloaded result = (%q, %+v, %v)", b, v, ok)
	}
	if execs.Load() != 0 {
		t.Error("preloaded key still executed the harness")
	}

	// Tampered records are skipped, not trusted.
	bad := saved[0]
	bad.Key = strings.Repeat("0", 64)
	invalid := CachedResult{Key: "x", Kind: Kind("nope")}
	s3 := newStubServer(t, Config{})
	if got := s3.Preload([]CachedResult{bad, invalid}); got != 0 {
		t.Fatalf("tampered preload accepted %d records", got)
	}
	// Re-preloading an existing key is idempotent.
	if got := s2.Preload(saved); got != 0 {
		t.Errorf("duplicate preload accepted %d records", got)
	}
}

func TestKindsCoveredByNormalize(t *testing.T) {
	t.Parallel()
	for _, kind := range Kinds() {
		if _, err := normalize(kind, Params{}); err != nil {
			t.Errorf("%s: zero params rejected: %v", kind, err)
		}
	}
}
