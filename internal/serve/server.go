// Package serve exposes the repo's experiments — reliability runs,
// degradation grids, the gap table, the Theorem 6 reduction, and the
// construction figures — as an HTTP/JSON job service (stdlib only).
//
// Every experiment in this repo is a pure function of its normalized
// parameters, which buys the service two structural properties:
//
//   - Results are content-addressed. A job's identity is the SHA-256 of
//     (kind, canonical params JSON); its result body is marshaled once
//     and every fetch of that key serves the same bytes.
//   - Identical submissions deduplicate, singleflight-style. The cache
//     holds one entry per key whatever its state (queued, running, done,
//     failed), and the dedupe-or-enqueue decision is atomic under one
//     mutex, so K concurrent identical submissions execute the harness
//     exactly once and all observe the same entry.
//
// Scheduling is a bounded FIFO queue drained by a fixed worker pool.
// When the queue is full, Submit rejects immediately (the HTTP layer
// maps this to 429 + Retry-After) rather than blocking the accept loop.
// Each job runs under an optional wall-clock budget in a guarded
// goroutine: overruns and panics degrade to a recorded failed entry, and
// the worker moves on.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dyndiam/internal/obs"
)

// ErrDraining is returned by Submit for new work while the server is
// draining. The HTTP layer maps it to 503; duplicate submissions of
// existing entries are still answered from cache.
var ErrDraining = errors.New("serve: server is draining; not accepting new jobs")

// Status is the lifecycle state of a cache entry.
type Status string

// Entry lifecycle: Queued -> Running -> Done | Failed. Preloaded
// checkpoint entries start at Done.
const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Config tunes a Server. The zero value is usable: New fills defaults.
type Config struct {
	// Workers is the size of the worker pool (default 2).
	Workers int
	// QueueCap bounds the FIFO job queue; a full queue rejects new work
	// (default 32).
	QueueCap int
	// JobBudget bounds one job's wall-clock time; overruns are abandoned
	// and recorded as failed. 0 means unlimited.
	JobBudget time.Duration
	// RetryAfterSec is the Retry-After hint on 429 responses (default 1).
	RetryAfterSec int
	// Exec overrides the harness executor — tests stub it to drive the
	// scheduling machinery without running sweeps. Default: run.
	Exec func(Kind, Params) ([]byte, error)
	// FlightRecorderCap bounds each job's flight-recorder event ring
	// (default 512 events; the oldest events drop first). Negative
	// disables per-job recording entirely.
	FlightRecorderCap int
	// CaptureSweepSpans folds the harness's per-cell sweep spans into
	// each job's flight recorder. The capture buffer is process-global,
	// so this serializes job execution — a debugging mode for inspecting
	// one job's cells in Perfetto, not a throughput-serving setting.
	CaptureSweepSpans bool
}

// entry is one cache slot: the single authority for a content key. All
// mutable fields are guarded by Server.mu; done is closed exactly once
// when the entry reaches a terminal status.
type entry struct {
	key    string
	kind   Kind
	params Params
	status Status
	body   []byte
	errMsg string
	done   chan struct{}
	flight *flightRecorder // nil when recording is disabled
}

// JobView is the externally visible snapshot of a cache entry.
type JobView struct {
	Key    string `json:"key"`
	Kind   Kind   `json:"kind"`
	Params Params `json:"params"`
	Status Status `json:"status"`
	Err    string `json:"err,omitempty"`
}

// view snapshots e. Callers must hold Server.mu.
func (e *entry) view() JobView {
	return JobView{Key: e.key, Kind: e.kind, Params: e.params, Status: e.status, Err: e.errMsg}
}

// Server schedules experiment jobs over a content-addressed result
// cache. Create with New, serve its Handler, stop with Close.
type Server struct {
	cfg  Config
	exec func(Kind, Params) ([]byte, error)

	mu    sync.Mutex
	cache map[string]*entry
	order []string // insertion order; the no-map-iteration listing walk

	queue chan *entry
	quit  chan struct{}
	wg    sync.WaitGroup

	// draining (guarded by mu) makes Submit reject new work; drain is
	// closed once by Drain to switch the workers into run-down mode.
	draining  bool
	drain     chan struct{}
	drainOnce sync.Once

	// start anchors the flight recorders' milliseconds clock.
	start time.Time
	// execSerial serializes job execution when CaptureSweepSpans is set
	// (the harness's span-capture buffer is process-global).
	execSerial sync.Mutex

	m metrics
}

// New builds a Server and starts its worker pool. The caller owns the
// shutdown: Close stops the workers (queued-but-unstarted jobs stay
// queued and are dropped with the process).
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 32
	}
	if cfg.RetryAfterSec <= 0 {
		cfg.RetryAfterSec = 1
	}
	if cfg.FlightRecorderCap == 0 {
		cfg.FlightRecorderCap = 512
	}
	s := &Server{
		cfg:   cfg,
		exec:  cfg.Exec,
		cache: map[string]*entry{},
		queue: make(chan *entry, cfg.QueueCap),
		quit:  make(chan struct{}),
		drain: make(chan struct{}),
		start: time.Now(), //lint:allow servedeterminism flight-recorder clock anchor, never observed by experiment code
	}
	if s.exec == nil {
		s.exec = run
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Close stops the worker pool and waits for in-flight jobs to finish
// (or to be abandoned by their budget).
func (s *Server) Close() {
	close(s.quit)
	s.wg.Wait()
}

// Drain is the graceful counterpart to Close: it stops accepting new
// submissions (Submit answers ErrDraining, /readyz flips to 503), then
// blocks until the workers have finished every queued AND in-flight job
// — each still bounded by the job budget — before returning. Close, by
// contrast, abandons queued-but-unstarted entries. The caller checkpoints
// after Drain returns so the saved cache includes the drained work.
// Idempotent; safe to combine with a later Close.
func (s *Server) Drain() {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		close(s.drain)
	})
	s.wg.Wait()
}

// Draining reports whether Drain has begun; the readiness probe keys off
// it.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// SubmitOutcome classifies what Submit did with a valid submission.
type SubmitOutcome int

const (
	// SubmitNew means a fresh entry was created and enqueued.
	SubmitNew SubmitOutcome = iota
	// SubmitDup means an existing entry (any status) absorbed the
	// submission — the singleflight/cache-hit path.
	SubmitDup
	// SubmitRejected means the queue was full; nothing was recorded and
	// the client should retry later.
	SubmitRejected
)

// Submit normalizes and content-addresses one job request, then either
// returns the existing entry for its key, enqueues a fresh one, or
// rejects for backpressure. Lookup and enqueue happen atomically under
// one mutex — a concurrent identical submission can never observe a key
// that is about to be rolled back, and the queue send is non-blocking so
// Submit never stalls the accept loop.
func (s *Server) Submit(kind Kind, p Params) (JobView, SubmitOutcome, error) {
	s.m.requests.Add(1)
	np, err := normalize(kind, p)
	if err != nil {
		return JobView{}, SubmitRejected, err
	}
	key, err := jobKey(kind, np)
	if err != nil {
		return JobView{}, SubmitRejected, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.cache[key]; ok {
		s.m.cacheHits.Add(1)
		return e.view(), SubmitDup, nil
	}
	if s.draining {
		// Cache hits above are still served — a drain refuses new work,
		// not reads of entries it is finishing.
		return JobView{}, SubmitRejected, ErrDraining
	}
	s.m.cacheMiss.Add(1)
	e := &entry{key: key, kind: kind, params: np, status: StatusQueued, done: make(chan struct{})}
	if s.cfg.FlightRecorderCap > 0 {
		e.flight = newFlightRecorder(s.cfg.FlightRecorderCap)
	}
	select {
	case s.queue <- e:
		s.cache[key] = e
		s.order = append(s.order, key)
		s.recordQueued(e)
		return e.view(), SubmitNew, nil
	default:
		s.m.rejected.Add(1)
		return JobView{}, SubmitRejected, nil
	}
}

// Job returns the entry for key, if any.
func (s *Server) Job(key string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.cache[key]
	if !ok {
		return JobView{}, false
	}
	return e.view(), true
}

// Jobs lists every cache entry in insertion order.
func (s *Server) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, key := range s.order {
		out = append(out, s.cache[key].view())
	}
	return out
}

// ResultBody returns the stored result bytes for key. ok reports whether
// the key exists at all; a nil body with ok=true means the job is still
// pending or failed (check the view).
func (s *Server) ResultBody(key string) (body []byte, view JobView, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, exists := s.cache[key]
	if !exists {
		return nil, JobView{}, false
	}
	return e.body, e.view(), true
}

// Wait blocks until the entry for key reaches a terminal status and
// returns its final view and body. Unknown keys return ok=false
// immediately. Intended for tests and embedded (non-HTTP) callers; HTTP
// clients poll instead.
func (s *Server) Wait(key string) (body []byte, view JobView, ok bool) {
	s.mu.Lock()
	e, exists := s.cache[key]
	s.mu.Unlock()
	if !exists {
		return nil, JobView{}, false
	}
	<-e.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return e.body, e.view(), true
}

// RetryAfterSec exposes the configured backpressure hint.
func (s *Server) RetryAfterSec() int { return s.cfg.RetryAfterSec }

// worker drains the queue until Close. After Drain it switches to
// run-down mode: finish everything already queued, then exit. Submit
// stopped admitting entries before the drain channel closed, so an empty
// queue observed in run-down mode is permanently empty.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case e := <-s.queue:
			s.runJob(e)
		case <-s.drain:
			for {
				select {
				case e := <-s.queue:
					s.runJob(e)
				default:
					return
				}
			}
		}
	}
}

// runJob executes one entry to a terminal status. The harness execution
// counter increments exactly once per entry — the singleflight assertion
// that K identical submissions cost one sweep keys off it.
func (s *Server) runJob(e *entry) {
	s.mu.Lock()
	e.status = StatusRunning
	s.mu.Unlock()
	s.m.executions.Add(1)
	s.recordRunning(e)
	start := time.Now() //lint:allow servedeterminism job latency metric, never observed by experiment code
	var body []byte
	var err error
	var sweepSpans []obs.Event
	if s.cfg.CaptureSweepSpans {
		body, err, sweepSpans = s.captureSweepSpans(e.kind, e.params)
	} else {
		body, err = s.execGuarded(e.kind, e.params)
	}
	s.m.lat.observe(time.Since(start).Milliseconds()) //lint:allow servedeterminism job latency metric, never observed by experiment code
	s.mu.Lock()
	if err != nil {
		e.status = StatusFailed
		e.errMsg = err.Error()
		s.m.failed.Add(1)
	} else {
		e.status = StatusDone
		e.body = body
	}
	close(e.done)
	s.mu.Unlock()
	// The terminal record is written after the status flip so the dumped
	// metric snapshot reflects the finished job.
	s.recordTerminal(e, err != nil, sweepSpans)
}

// execGuarded runs the executor in a guarded goroutine: panics become
// errors, and with a JobBudget configured an overrunning job is
// abandoned (its goroutine finishes into a buffered channel and is
// garbage collected) so one hung sweep degrades to a recorded failure
// instead of wedging a worker forever. Same containment pattern as the
// harness's graceful cell runner.
func (s *Server) execGuarded(kind Kind, p Params) (body []byte, err error) {
	type reply struct {
		body []byte
		err  error
	}
	ch := make(chan reply, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- reply{nil, fmt.Errorf("serve: job %s panicked: %v", kind, r)}
			}
		}()
		b, e := s.exec(kind, p)
		ch <- reply{b, e}
	}()
	if s.cfg.JobBudget <= 0 {
		r := <-ch
		return r.body, r.err
	}
	t := time.NewTimer(s.cfg.JobBudget)
	defer t.Stop()
	select {
	case r := <-ch:
		return r.body, r.err
	case <-t.C:
		return nil, fmt.Errorf("serve: job %s exceeded budget %v and was abandoned", kind, s.cfg.JobBudget)
	}
}
