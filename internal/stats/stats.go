// Package stats provides the small summary-statistics substrate the
// experiment harness uses to aggregate repeated runs: mean, standard
// deviation, extremes, and percentiles, plus a compact renderer.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	P50, P90  float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	var sum float64
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(sq / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Percentile(sorted, 0.50)
	s.P90 = Percentile(sorted, 0.90)
	return s
}

// Percentile returns the p-quantile (0 <= p <= 1) of an ascending-sorted
// sample by linear interpolation. It panics on an empty sample.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		//lint:allow panicfree documented contract: callers aggregate at least one trial before asking for quantiles
		panic("stats: percentile of empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders "mean±std [min,max] (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.2f±%.2f [%.2f,%.2f] (n=%d)", s.Mean, s.Std, s.Min, s.Max, s.N)
}

// Wilson returns the Wilson score confidence interval for the success
// probability after k successes in n Bernoulli trials, at normal quantile
// z (z = 1.96 for 95%). Unlike the normal approximation it stays inside
// [0, 1] and behaves sensibly at k = 0 and k = n — exactly the regimes a
// degradation sweep cares about (zero observed errors still yields a
// non-trivial upper bound). n <= 0 returns the vacuous (0, 1).
func Wilson(k, n int, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	p := float64(k) / float64(n)
	nf := float64(n)
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Repeat evaluates f over seeds 0..times-1 and summarizes the results.
// Errors abort the repetition.
func Repeat(times int, f func(seed uint64) (float64, error)) (Summary, error) {
	xs := make([]float64, 0, times)
	for i := 0; i < times; i++ {
		v, err := f(uint64(i))
		if err != nil {
			return Summary{}, err
		}
		xs = append(xs, v)
	}
	return Summarize(xs), nil
}
