package stats

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownSample(t *testing.T) {
	t.Parallel()
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("N=%d Mean=%v, want 8, 5", s.N, s.Mean)
	}
	// Sample std of this classic sample is ~2.138.
	if math.Abs(s.Std-2.1381) > 0.001 {
		t.Errorf("Std = %v, want ~2.138", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if math.Abs(s.P50-4.5) > 1e-9 {
		t.Errorf("P50 = %v, want 4.5", s.P50)
	}
}

func TestSummarizeEmptyAndSingleton(t *testing.T) {
	t.Parallel()
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty: %+v", s)
	}
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.Std != 0 || s.P50 != 3 || s.P90 != 3 {
		t.Errorf("singleton: %+v", s)
	}
}

func TestPercentileBounds(t *testing.T) {
	t.Parallel()
	sorted := []float64{1, 2, 3, 4}
	if Percentile(sorted, 0) != 1 || Percentile(sorted, 1) != 4 {
		t.Error("extreme percentiles wrong")
	}
	if got := Percentile(sorted, 0.5); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("P50 = %v, want 2.5", got)
	}
}

func TestPercentilePanicsOnEmpty(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Percentile(nil, 0.5)
}

func TestSummaryInvariants(t *testing.T) {
	t.Parallel()
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		if s.Min > s.Mean+1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		if s.P50 < s.Min-1e-9 || s.P50 > s.Max+1e-9 {
			return false
		}
		if s.P90 < s.P50-1e-9 {
			return false
		}
		return s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileMonotone(t *testing.T) {
	t.Parallel()
	f := func(raw []float64, aRaw, bRaw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		a := float64(aRaw) / 255
		b := float64(bRaw) / 255
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRepeat(t *testing.T) {
	t.Parallel()
	s, err := Repeat(10, func(seed uint64) (float64, error) {
		return float64(seed), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 10 || s.Mean != 4.5 || s.Min != 0 || s.Max != 9 {
		t.Errorf("Repeat summary: %+v", s)
	}
	wantErr := errors.New("boom")
	if _, err := Repeat(3, func(seed uint64) (float64, error) {
		if seed == 1 {
			return 0, wantErr
		}
		return 1, nil
	}); !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestWilson(t *testing.T) {
	t.Parallel()
	if lo, hi := Wilson(0, 0, 1.96); lo != 0 || hi != 1 {
		t.Errorf("n=0 interval [%v,%v], want [0,1]", lo, hi)
	}
	lo, hi := Wilson(5, 10, 1.96)
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("5/10 interval [%v,%v] does not contain the point estimate", lo, hi)
	}
	// More trials at the same rate narrow the interval.
	if lo2, hi2 := Wilson(50, 100, 1.96); hi2-lo2 >= hi-lo {
		t.Error("interval did not narrow with more trials")
	}
	// Extremes stay clamped to [0,1] and keep a nonempty interval.
	if lo, hi := Wilson(0, 10, 1.96); lo != 0 || hi <= 0 {
		t.Errorf("k=0 interval [%v,%v]", lo, hi)
	}
	if lo, hi := Wilson(10, 10, 1.96); hi != 1 || lo >= 1 {
		t.Errorf("k=n interval [%v,%v]", lo, hi)
	}
	// Known value: Wilson 95%% for 1/10 is about [0.018, 0.404].
	lo, hi = Wilson(1, 10, 1.96)
	if math.Abs(lo-0.0179) > 0.005 || math.Abs(hi-0.4042) > 0.005 {
		t.Errorf("1/10 interval [%v,%v], want ~[0.018,0.404]", lo, hi)
	}
	// Monotone in k for the bounds.
	f := func(kRaw, nRaw uint8) bool {
		n := int(nRaw%50) + 2
		k := int(kRaw) % n
		lo1, hi1 := Wilson(k, n, 1.96)
		lo2, hi2 := Wilson(k+1, n, 1.96)
		return lo1 <= lo2+1e-12 && hi1 <= hi2+1e-12 && lo1 >= 0 && hi2 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringFormat(t *testing.T) {
	t.Parallel()
	s := Summarize([]float64{1, 3})
	if got := s.String(); got == "" {
		t.Error("empty render")
	}
}
