package subnet

import (
	"fmt"

	"dyndiam/internal/chains"
	"dyndiam/internal/disjcp"
	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
)

// CFloodNet is the Theorem 6 composition: a type-Γ and a type-Λ subnetwork
// joined by the fixed bridging edge set
//
//	{(A_Γ, A_Λ), (B_Γ, B_Λ)}                     if DISJOINTNESSCP(x, y) = 1,
//	{(A_Γ, A_Λ), (B_Γ, B_Λ), (L_Γ, L_Λ)}        if DISJOINTNESSCP(x, y) = 0,
//
// where L_Γ is one end of the Γ line of detached |⁰₀ middles and L_Λ is a
// mounting point of the Λ subnetwork. The total node count is N = 3nq + 4
// regardless of the answer, so N can be public. The resulting dynamic
// network has diameter O(1) when the answer is 1 and Ω(q) when it is 0.
type CFloodNet struct {
	In     disjcp.Instance
	Gamma  *Gamma
	Lambda *Lambda
	N      int
	Disj   int // DISJOINTNESSCP(x, y)
	// coreBridges are the always-present bridges known to all parties;
	// refBridge is the (L_Γ, L_Λ) bridge of 0-instances, which only the
	// reference adversary (and the referee) can place.
	coreBridges [][2]int
	refBridge   [2]int
	hasRef      bool
}

// NewCFlood builds the Theorem 6 composition network for the instance.
func NewCFlood(in disjcp.Instance) (*CFloodNet, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	g := NewGamma(in, 0)
	l := NewLambda(in, g.Size())
	c := &CFloodNet{
		In:     in,
		Gamma:  g,
		Lambda: l,
		N:      g.Size() + l.Size(),
		Disj:   in.Eval(),
	}
	if c.N != 3*in.N*in.Q+4 {
		return nil, fmt.Errorf("subnet: node count %d != 3nq+4 = %d", c.N, 3*in.N*in.Q+4)
	}
	c.coreBridges = [][2]int{{g.A, l.A}, {g.B, l.B}}
	if c.Disj == 0 {
		lg, ok := g.LineEnd()
		if !ok {
			return nil, fmt.Errorf("subnet: 0-instance without a Γ line")
		}
		mounts := l.MountingPoints()
		if len(mounts) == 0 {
			return nil, fmt.Errorf("subnet: 0-instance without a Λ mounting point")
		}
		c.refBridge = [2]int{lg, mounts[0]}
		c.hasRef = true
	}
	return c, nil
}

// Horizon returns (q-1)/2, the number of rounds the two-party simulation
// runs (and through which the spoiled-node machinery is valid).
func (c *CFloodNet) Horizon() int { return (c.In.Q - 1) / 2 }

// Source returns the CFLOOD source node: A_Γ (Theorem 6's choice).
func (c *CFloodNet) Source() int { return c.Gamma.A }

// Bridges returns the bridging edge set of this instance's network.
func (c *CFloodNet) Bridges() [][2]int {
	out := append([][2]int(nil), c.coreBridges...)
	if c.hasRef {
		out = append(out, c.refBridge)
	}
	return out
}

// Topology renders the round-r graph under party p. actions may be nil
// when no protocol execution is attached (rules 3/4 then default to the
// "middle receives" schedule). Round 0 is the initial topology.
func (c *CFloodNet) Topology(p chains.Party, r int, actions []dynet.Action) *graph.Graph {
	g := graph.New(c.N)
	c.TopologyInto(g, p, r, actions)
	return g
}

// TopologyInto renders the round-r graph under party p into g, which must
// span c.N vertices; existing edges are discarded. It is the allocation-free
// form of Topology for callers that reuse one scratch graph per round.
func (c *CFloodNet) TopologyInto(g *graph.Graph, p chains.Party, r int, actions []dynet.Action) {
	g.Reset()
	mid := midRecv(actions)
	c.Gamma.AddEdges(g, p, r, mid)
	c.Lambda.AddEdges(g, p, r, mid)
	for _, e := range c.coreBridges {
		g.AddEdge(e[0], e[1])
	}
	if p == chains.Reference && c.hasRef {
		g.AddEdge(c.refBridge[0], c.refBridge[1])
	}
}

// Adversary returns the dynet adversary presenting this network under
// party p (Reference for real executions; Alice/Bob for simulated views).
// Per the Adversary contract the returned graph is reused between rounds.
func (c *CFloodNet) Adversary(p chains.Party) dynet.Adversary {
	g := graph.New(c.N)
	return dynet.AdversaryFunc(func(r int, actions []dynet.Action) *graph.Graph {
		c.TopologyInto(g, p, r, actions)
		return g
	})
}

// SpoiledFrom returns, per node, the first round from whose beginning the
// node is spoiled for party p (Never if not within any horizon).
func (c *CFloodNet) SpoiledFrom(p chains.Party) []int {
	dst := make([]int, c.N)
	for i := range dst {
		dst[i] = Never
	}
	c.Gamma.SpoiledFrom(dst, p)
	c.Lambda.SpoiledFrom(dst, p)
	return dst
}

// ForwardNodes returns the special nodes whose outgoing messages party p
// forwards to the other party during the simulation: Alice forwards A_Γ and
// A_Λ; Bob forwards B_Γ and B_Λ.
func (c *CFloodNet) ForwardNodes(p chains.Party) []int {
	switch p {
	case chains.Alice:
		return []int{c.Gamma.A, c.Lambda.A}
	case chains.Bob:
		return []int{c.Gamma.B, c.Lambda.B}
	}
	return nil
}

// ConsensusNet is the Theorem 7 composition: a type-Λ subnetwork (ids
// [0, S)) plus, iff DISJOINTNESSCP(x, y) = 0, a type-Υ subnetwork (a second
// Λ over ids [S, 2S)), joined by one bridging edge between two mounting
// points. Initial consensus inputs are 0 throughout Λ and 1 throughout Υ.
//
// Because Υ's existence depends on the answer, N is 2S or S and cannot be
// public; both values are within a 1/3 relative error of N' = 4S/3, which is
// what the protocol is given.
type ConsensusNet struct {
	In         disjcp.Instance
	Lambda     *Lambda
	Upsilon    *Lambda // nil when the answer is 1
	N          int     // actual node count (S or 2S)
	PotentialN int     // 2S: the id space both parties agree on
	NPrime     int     // the estimate handed to the protocol: round(4S/3)
	Disj       int
	bridge     [2]int
	hasBridge  bool
}

// NewConsensus builds the Theorem 7 composition network for the instance.
func NewConsensus(in disjcp.Instance) (*ConsensusNet, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	l := NewLambda(in, 0)
	s := l.Size()
	c := &ConsensusNet{
		In:         in,
		Lambda:     l,
		PotentialN: 2 * s,
		NPrime:     (4*s + 1) / 3, // round(4S/3); off by O(1/S) from exact 1/3
		Disj:       in.Eval(),
	}
	if c.Disj == 0 {
		c.Upsilon = NewLambda(in, s)
		c.N = 2 * s
		lm := l.MountingPoints()
		um := c.Upsilon.MountingPoints()
		if len(lm) == 0 || len(um) == 0 {
			return nil, fmt.Errorf("subnet: 0-instance without mounting points")
		}
		c.bridge = [2]int{lm[0], um[0]}
		c.hasBridge = true
	} else {
		c.N = s
	}
	return c, nil
}

// Horizon returns (q-1)/2.
func (c *ConsensusNet) Horizon() int { return (c.In.Q - 1) / 2 }

// Inputs returns the initial consensus values: 0 for every Λ node, 1 for
// every Υ node.
func (c *ConsensusNet) Inputs() []int64 {
	in := make([]int64, c.N)
	for v := c.Lambda.Size(); v < c.N; v++ {
		in[v] = 1
	}
	return in
}

// Topology renders the round-r graph under party p. Under Alice's and
// Bob's adversaries the Υ subnetwork is always empty, so their graphs span
// only the Λ ids (padded to the same vertex count for comparability).
func (c *ConsensusNet) Topology(p chains.Party, r int, actions []dynet.Action) *graph.Graph {
	g := graph.New(c.N)
	c.TopologyInto(g, p, r, actions)
	return g
}

// TopologyInto renders the round-r graph under party p into g, which must
// span c.N vertices; existing edges are discarded. It is the allocation-free
// form of Topology for callers that reuse one scratch graph per round.
func (c *ConsensusNet) TopologyInto(g *graph.Graph, p chains.Party, r int, actions []dynet.Action) {
	g.Reset()
	mid := midRecv(actions)
	c.Lambda.AddEdges(g, p, r, mid)
	if p == chains.Reference && c.Upsilon != nil {
		c.Upsilon.AddEdges(g, p, r, mid)
		if c.hasBridge {
			g.AddEdge(c.bridge[0], c.bridge[1])
		}
	}
}

// Adversary returns the dynet adversary for party p. Per the Adversary
// contract the returned graph is reused between rounds.
func (c *ConsensusNet) Adversary(p chains.Party) dynet.Adversary {
	g := graph.New(c.N)
	return dynet.AdversaryFunc(func(r int, actions []dynet.Action) *graph.Graph {
		c.TopologyInto(g, p, r, actions)
		return g
	})
}

// SpoiledFrom returns per-node spoiled times for party p. All Υ nodes are
// spoiled from round 0 onward — neither party ever simulates them.
func (c *ConsensusNet) SpoiledFrom(p chains.Party) []int {
	dst := make([]int, c.N)
	for i := range dst {
		dst[i] = Never
	}
	c.Lambda.SpoiledFrom(dst, p)
	if c.Upsilon != nil {
		for v := c.Lambda.Size(); v < c.N; v++ {
			if p != chains.Reference {
				dst[v] = 0
			}
		}
	}
	return dst
}

// ForwardNodes returns the nodes whose messages party p forwards: A_Λ for
// Alice, B_Λ for Bob (A_Υ and B_Υ are never forwarded, per Section 5).
func (c *ConsensusNet) ForwardNodes(p chains.Party) []int {
	switch p {
	case chains.Alice:
		return []int{c.Lambda.A}
	case chains.Bob:
		return []int{c.Lambda.B}
	}
	return nil
}
