package subnet

import (
	"math"
	"testing"

	"dyndiam/internal/chains"
	"dyndiam/internal/disjcp"
	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
	"dyndiam/internal/rng"
)

func TestCFloodNodeCount(t *testing.T) {
	for _, c := range []struct{ n, q int }{{2, 5}, {4, 5}, {3, 9}, {8, 13}} {
		in := disjcp.RandomOne(c.n, c.q, rng.New(uint64(c.n*c.q)))
		net, err := NewCFlood(in)
		if err != nil {
			t.Fatal(err)
		}
		if net.N != 3*c.n*c.q+4 {
			t.Errorf("n=%d q=%d: N = %d, want %d", c.n, c.q, net.N, 3*c.n*c.q+4)
		}
	}
}

func TestCFloodBridges(t *testing.T) {
	src := rng.New(9)
	one := disjcp.RandomOne(3, 7, src)
	netOne, err := NewCFlood(one)
	if err != nil {
		t.Fatal(err)
	}
	if len(netOne.Bridges()) != 2 {
		t.Errorf("1-instance has %d bridges, want 2", len(netOne.Bridges()))
	}
	zero := disjcp.RandomZero(3, 7, 1, src)
	netZero, err := NewCFlood(zero)
	if err != nil {
		t.Fatal(err)
	}
	if len(netZero.Bridges()) != 3 {
		t.Errorf("0-instance has %d bridges, want 3", len(netZero.Bridges()))
	}
}

// TestCFloodConnectedEveryRound checks the model constraint: the composed
// network is connected in every round, for both answers, well beyond the
// simulation horizon.
func TestCFloodConnectedEveryRound(t *testing.T) {
	src := rng.New(77)
	for _, zero := range []bool{false, true} {
		var in disjcp.Instance
		if zero {
			in = disjcp.RandomZero(3, 9, 2, src)
		} else {
			in = disjcp.RandomOne(3, 9, src)
		}
		net, err := NewCFlood(in)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r <= 3*in.Q; r++ {
			if !net.Topology(chains.Reference, r, nil).Connected() {
				t.Errorf("zero=%v: disconnected at round %d", zero, r)
			}
		}
	}
}

// TestCFloodDiameterGap is the structural heart of Theorem 6: the network
// has O(1) dynamic diameter when DISJOINTNESSCP = 1 and Ω(q) when it is 0.
func TestCFloodDiameterGap(t *testing.T) {
	if testing.Short() {
		t.Skip("diameter computation is quadratic")
	}
	src := rng.New(5)
	for _, q := range []int{5, 9, 13} {
		one := disjcp.RandomOne(2, q, src)
		netOne, err := NewCFlood(one)
		if err != nil {
			t.Fatal(err)
		}
		d1 := refDiameter(t, netOne.Topology, netOne.N, 6*q)
		if d1 > 10 {
			t.Errorf("q=%d 1-instance: diameter %d > 10", q, d1)
		}

		zero := disjcp.RandomZero(2, q, 1, src)
		netZero, err := NewCFlood(zero)
		if err != nil {
			t.Fatal(err)
		}
		d0 := refDiameter(t, netZero.Topology, netZero.N, 8*q)
		if d0 < (q-1)/2 {
			t.Errorf("q=%d 0-instance: diameter %d < (q-1)/2 = %d", q, d0, (q-1)/2)
		}
	}
}

func refDiameter(t *testing.T, topo func(chains.Party, int, []dynet.Action) *graph.Graph, n, horizon int) int {
	t.Helper()
	graphs := make([]*graph.Graph, horizon)
	for r := 1; r <= horizon; r++ {
		graphs[r-1] = topo(chains.Reference, r, nil)
	}
	d, exact := dynet.DynamicDiameter(graphs)
	if !exact {
		t.Fatalf("diameter not certified within %d rounds (lower bound %d)", horizon, d)
	}
	return d
}

// TestLemma34NeighborConsistency is the randomized empirical check of
// Lemmas 3 and 4 over the full Theorem 6 composition: for random actions
// and every round r in [1, (q-1)/2], every node Z non-spoiled for a party
// that receives in round r satisfies
//
//	(i)  every node in the symmetric difference of Z's reference
//	     neighborhood S and simulated neighborhood S' receives in round r;
//	(ii) every node in S' is the party's opposite special (B_Γ/B_Λ for
//	     Alice, A_Γ/A_Λ for Bob) or non-spoiled for the party in round r-1.
func TestLemma34NeighborConsistency(t *testing.T) {
	src := rng.New(31337)
	for trial := 0; trial < 20; trial++ {
		q := []int{5, 7, 9, 11}[trial%4]
		var in disjcp.Instance
		if trial%2 == 0 {
			in = disjcp.Random(3, q, src)
		} else {
			in = disjcp.RandomZero(3, q, 1+trial%3, src)
		}
		net, err := NewCFlood(in)
		if err != nil {
			t.Fatal(err)
		}
		checkLemma34CFlood(t, net, src)
	}
}

func checkLemma34CFlood(t *testing.T, net *CFloodNet, src *rng.Source) {
	t.Helper()
	specials := map[chains.Party]map[int]bool{
		chains.Alice: {net.Gamma.B: true, net.Lambda.B: true},
		chains.Bob:   {net.Gamma.A: true, net.Lambda.A: true},
	}
	for _, p := range []chains.Party{chains.Alice, chains.Bob} {
		spoiled := net.SpoiledFrom(p)
		for r := 1; r <= net.Horizon(); r++ {
			actions := make([]dynet.Action, net.N)
			for v := range actions {
				if src.Bool() {
					actions[v] = dynet.Send
				}
			}
			ref := net.Topology(chains.Reference, r, actions)
			sim := net.Topology(p, r, actions)
			for z := 0; z < net.N; z++ {
				if r >= spoiled[z] || actions[z] != dynet.Receive {
					continue
				}
				refNb := neighborSet(ref, z)
				simNb := neighborSet(sim, z)
				for u := range symDiff(refNb, simNb) {
					if actions[u] != dynet.Receive {
						t.Fatalf("%v r=%d: divergent neighbor %d of non-spoiled %d is sending (x=%v y=%v)",
							p, r, u, z, net.In.X, net.In.Y)
					}
				}
				for u := range simNb {
					if specials[p][u] {
						continue
					}
					if spoiled[u] < r { // spoiled in round r-1 or earlier
						t.Fatalf("%v r=%d: simulated neighbor %d of %d spoiled since %d (x=%v y=%v)",
							p, r, u, z, spoiled[u], net.In.X, net.In.Y)
					}
				}
			}
		}
	}
}

func neighborSet(g *graph.Graph, v int) map[int]bool {
	out := map[int]bool{}
	g.ForEachNeighbor(v, func(u int) { out[u] = true })
	return out
}

func symDiff(a, b map[int]bool) map[int]bool {
	out := map[int]bool{}
	for v := range a {
		if !b[v] {
			out[v] = true
		}
	}
	for v := range b {
		if !a[v] {
			out[v] = true
		}
	}
	return out
}

func TestConsensusNetShape(t *testing.T) {
	src := rng.New(3)
	one := disjcp.RandomOne(2, 7, src)
	netOne, err := NewConsensus(one)
	if err != nil {
		t.Fatal(err)
	}
	s := netOne.Lambda.Size()
	if netOne.N != s || netOne.Upsilon != nil {
		t.Errorf("1-instance: N=%d Upsilon=%v, want N=%d nil", netOne.N, netOne.Upsilon, s)
	}
	zero := disjcp.RandomZero(2, 7, 1, src)
	netZero, err := NewConsensus(zero)
	if err != nil {
		t.Fatal(err)
	}
	if netZero.N != 2*s || netZero.Upsilon == nil {
		t.Errorf("0-instance: N=%d, want %d with Upsilon", netZero.N, 2*s)
	}
	// N' is within 1/3 of both possible N values, up to the O(1/S)
	// integrality slack of rounding 4S/3.
	for _, net := range []*ConsensusNet{netOne, netZero} {
		relErr := math.Abs(float64(net.NPrime-net.N)) / float64(net.N)
		if relErr > 1.0/3+1.0/float64(net.Lambda.Size()) {
			t.Errorf("N'=%d N=%d: relative error %.4f > 1/3 + 1/S", net.NPrime, net.N, relErr)
		}
	}
	// Inputs: all-0 on Λ, all-1 on Υ.
	in0 := netZero.Inputs()
	for v := 0; v < s; v++ {
		if in0[v] != 0 {
			t.Fatalf("Λ node %d has input %d", v, in0[v])
		}
	}
	for v := s; v < 2*s; v++ {
		if in0[v] != 1 {
			t.Fatalf("Υ node %d has input %d", v, in0[v])
		}
	}
}

func TestConsensusConnectedEveryRound(t *testing.T) {
	src := rng.New(21)
	for _, zero := range []bool{false, true} {
		var in disjcp.Instance
		if zero {
			in = disjcp.RandomZero(2, 9, 1, src)
		} else {
			in = disjcp.RandomOne(2, 9, src)
		}
		net, err := NewConsensus(in)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r <= 3*in.Q; r++ {
			if !net.Topology(chains.Reference, r, nil).Connected() {
				t.Errorf("zero=%v: disconnected at round %d", zero, r)
			}
		}
	}
}

// TestConsensusLemma34 runs the neighbor-consistency check on the Theorem 7
// composition, where the extra subtlety is the always-spoiled Υ subnetwork.
func TestConsensusLemma34(t *testing.T) {
	src := rng.New(8088)
	for trial := 0; trial < 10; trial++ {
		q := []int{5, 9}[trial%2]
		var in disjcp.Instance
		if trial%2 == 0 {
			in = disjcp.RandomZero(3, q, 1, src)
		} else {
			in = disjcp.Random(3, q, src)
		}
		net, err := NewConsensus(in)
		if err != nil {
			t.Fatal(err)
		}
		specials := map[chains.Party]map[int]bool{
			chains.Alice: {net.Lambda.B: true},
			chains.Bob:   {net.Lambda.A: true},
		}
		for _, p := range []chains.Party{chains.Alice, chains.Bob} {
			spoiled := net.SpoiledFrom(p)
			for r := 1; r <= net.Horizon(); r++ {
				actions := make([]dynet.Action, net.N)
				for v := range actions {
					if src.Bool() {
						actions[v] = dynet.Send
					}
				}
				ref := net.Topology(chains.Reference, r, actions)
				sim := net.Topology(p, r, actions)
				for z := 0; z < net.N; z++ {
					if r >= spoiled[z] || actions[z] != dynet.Receive {
						continue
					}
					for u := range symDiff(neighborSet(ref, z), neighborSet(sim, z)) {
						if actions[u] != dynet.Receive {
							t.Fatalf("%v r=%d: divergent sending neighbor %d of %d", p, r, u, z)
						}
					}
					for u := range neighborSet(sim, z) {
						if !specials[p][u] && spoiled[u] < r {
							t.Fatalf("%v r=%d: simulated neighbor %d of %d spoiled since %d", p, r, u, z, spoiled[u])
						}
					}
				}
			}
		}
	}
}

// TestUpsilonChangesNByConstantFactor documents the Section 3.3 observation
// that makes the CONSENSUS bound hold only for approximate N: the answer
// flips the node count by a factor of 2 while N' stays within 1/3 of both.
func TestUpsilonChangesNByConstantFactor(t *testing.T) {
	src := rng.New(10)
	one, _ := NewConsensus(disjcp.RandomOne(4, 9, src))
	zero, _ := NewConsensus(disjcp.RandomZero(4, 9, 1, src))
	if zero.N != 2*one.N {
		t.Errorf("N(0-instance) = %d, want 2 x N(1-instance) = %d", zero.N, 2*one.N)
	}
	if one.NPrime != zero.NPrime {
		t.Errorf("N' differs between answers: %d vs %d (it must not leak the answer)",
			one.NPrime, zero.NPrime)
	}
}

func BenchmarkCFloodTopologyRender(b *testing.B) {
	in := disjcp.RandomZero(4, 33, 1, rng.New(1))
	net, err := NewCFlood(in)
	if err != nil {
		b.Fatal(err)
	}
	actions := make([]dynet.Action, net.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Topology(chains.Reference, i%net.Horizon()+1, actions)
	}
}

func BenchmarkSpoiledFrom(b *testing.B) {
	in := disjcp.RandomZero(4, 33, 1, rng.New(1))
	net, err := NewCFlood(in)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.SpoiledFrom(chains.Alice)
	}
}
