package subnet

import (
	"dyndiam/internal/adversaries"
	"dyndiam/internal/chains"
	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
)

// DualView expresses the Theorem 6 composition in the dual-graph model the
// paper names in Section 2 ("all our results and proofs also extend to the
// dual graph model without any modification"):
//
//   - the reliable graph holds every edge the reference adversary never
//     removes — the A/B-to-chain attachments, the Λ horizontal lines, the
//     bridging edges, and (for 0-instances) the Γ line of detached middles;
//   - every chain's top and bottom edge is an unreliable edge whose
//     per-round presence the dual-graph chooser sets to exactly the
//     reference adversary's schedule (including the middle-action
//     dependence of rules 3/4).
//
// By construction the dual-graph adversary's round-r topology equals
// Topology(Reference, r, actions) for every r >= 1, which the tests verify
// — the concrete content of the paper's model-robustness remark.
func (c *CFloodNet) DualView() dynet.Adversary {
	reliable := graph.New(c.N)

	type unreliableEdge struct {
		chain chains.Chain
		mid   int // the chain's middle node (rules 3/4 consult its action)
		top   bool
		u, v  int
	}
	var entries []unreliableEdge

	addChain := func(ch chains.Chain, cn ChainNodes, a, b int) {
		reliable.AddEdge(a, cn.U)
		reliable.AddEdge(b, cn.W)
		entries = append(entries,
			unreliableEdge{chain: ch, mid: cn.V, top: true, u: cn.U, v: cn.V},
			unreliableEdge{chain: ch, mid: cn.V, top: false, u: cn.V, v: cn.W},
		)
	}

	g := c.Gamma
	for i := range g.Groups {
		for _, cn := range g.Groups[i] {
			addChain(g.Chain(i), cn, g.A, g.B)
		}
	}
	// The Γ line exists from round 1 on — i.e. in every round the engine
	// executes — so it is reliable in the dual view.
	line := g.LineMiddles()
	for i := 0; i+1 < len(line); i++ {
		reliable.AddEdge(line[i], line[i+1])
	}

	l := c.Lambda
	for i := range l.Centi {
		for j := range l.Centi[i] {
			addChain(l.Chain(i, j), l.Centi[i][j], l.A, l.B)
			if j+1 < len(l.Centi[i]) {
				reliable.AddEdge(l.Centi[i][j].V, l.Centi[i][j+1].V)
			}
		}
	}
	for _, e := range c.Bridges() {
		reliable.AddEdge(e[0], e[1])
	}

	pairs := make([][2]int, len(entries))
	for i, en := range entries {
		pairs[i] = [2]int{en.u, en.v}
	}
	chooser := func(r int, actions []dynet.Action, present []bool) {
		for i, en := range entries {
			mr := true
			if _, cond := en.chain.MidActionRound(); cond && actions != nil {
				mr = actions[en.mid] == dynet.Receive
			}
			if en.top {
				present[i] = en.chain.TopEdgePresent(chains.Reference, r, mr)
			} else {
				present[i] = en.chain.BottomEdgePresent(chains.Reference, r, mr)
			}
		}
	}
	return adversaries.NewDual(reliable, pairs, chooser)
}
