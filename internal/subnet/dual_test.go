package subnet

import (
	"testing"

	"dyndiam/internal/chains"
	"dyndiam/internal/disjcp"
	"dyndiam/internal/dynet"
	"dyndiam/internal/rng"
)

// TestDualViewMatchesReference: the dual-graph expression of the Theorem 6
// composition produces, round for round and under arbitrary committed
// actions, exactly the reference adversary's topology.
func TestDualViewMatchesReference(t *testing.T) {
	src := rng.New(123)
	for trial := 0; trial < 8; trial++ {
		q := []int{5, 9, 13}[trial%3]
		var in disjcp.Instance
		if trial%2 == 0 {
			in = disjcp.RandomZero(2, q, 1, src)
		} else {
			in = disjcp.Random(2, q, src)
		}
		net, err := NewCFlood(in)
		if err != nil {
			t.Fatal(err)
		}
		dual := net.DualView()
		for r := 1; r <= 2*q; r++ {
			actions := make([]dynet.Action, net.N)
			for v := range actions {
				if src.Bool() {
					actions[v] = dynet.Send
				}
			}
			want := net.Topology(chains.Reference, r, actions)
			got := dual.Topology(r, actions)
			if got.N() != want.N() || got.M() != want.M() {
				t.Fatalf("q=%d r=%d: dual has %d/%d vertices/edges, reference %d/%d",
					q, r, got.N(), got.M(), want.N(), want.M())
			}
			for _, e := range want.Edges() {
				if !got.HasEdge(e[0], e[1]) {
					t.Fatalf("q=%d r=%d: dual missing edge %v", q, r, e)
				}
			}
		}
	}
}

// TestDualViewRunsCFlood drives an actual protocol execution through the
// dual-graph adversary — the same oracle binary the flat model runs.
func TestDualViewRunsCFlood(t *testing.T) {
	in := disjcp.RandomOne(2, 9, rng.New(5))
	net, err := NewCFlood(in)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]int64, net.N)
	inputs[net.Source()] = 1
	ms := dynet.NewMachines(dualTestProto{}, net.N, inputs, 3, nil)
	e := &dynet.Engine{Machines: ms, Adv: net.DualView(), Workers: 1,
		CheckConnectivity: true,
		Terminated:        func([]dynet.Machine) bool { return false }}
	if _, err := e.Run(3 * in.Q); err != nil {
		t.Fatal(err)
	}
}

// dualTestProto is a minimal always-send-token protocol local to this test
// (avoiding an import cycle with protocols/flood).
type dualTestProto struct{}

func (dualTestProto) Name() string { return "subnet/dual-test" }
func (dualTestProto) NewMachine(cfg dynet.Config) dynet.Machine {
	return &dualTestMachine{informed: cfg.Input == 1}
}

type dualTestMachine struct{ informed bool }

func (m *dualTestMachine) Step(r int) (dynet.Action, dynet.Message) {
	if m.informed {
		return dynet.Send, dynet.Message{Payload: []byte{1}, NBits: 1}
	}
	return dynet.Receive, dynet.Message{}
}
func (m *dualTestMachine) Deliver(r int, msgs []dynet.Message) {
	if len(msgs) > 0 {
		m.informed = true
	}
}
func (m *dualTestMachine) Output() (int64, bool) { return 0, m.informed }
