package subnet

import (
	"dyndiam/internal/chains"
	"dyndiam/internal/disjcp"
	"dyndiam/internal/graph"
)

// Gamma is a type-Γ subnetwork over global ids [Base, Base+Size).
// Layout: A = Base, B = Base+1, then groups in index order, chains within a
// group in order, nodes U, V, W within a chain.
type Gamma struct {
	In   disjcp.Instance
	Base int
	A, B int
	// Groups[i][k] is the k-th chain of group i; all chains of group i
	// carry labels (x_i, y_i).
	Groups [][]ChainNodes
}

// GammaSize returns the node count of a type-Γ subnetwork for parameters
// (n, q): 3n(q-1)/2 + 2.
func GammaSize(n, q int) int { return 3*n*(q-1)/2 + 2 }

// NewGamma lays out the type-Γ subnetwork for the instance starting at id
// base.
func NewGamma(in disjcp.Instance, base int) *Gamma {
	m := (in.Q - 1) / 2
	g := &Gamma{In: in, Base: base, A: base, B: base + 1}
	next := base + 2
	g.Groups = make([][]ChainNodes, in.N)
	for i := 0; i < in.N; i++ {
		g.Groups[i] = make([]ChainNodes, m)
		for k := 0; k < m; k++ {
			g.Groups[i][k] = ChainNodes{U: next, V: next + 1, W: next + 2}
			next += 3
		}
	}
	return g
}

// Size returns the number of nodes in the subnetwork.
func (g *Gamma) Size() int { return GammaSize(g.In.N, g.In.Q) }

// Chain returns the label chain of group i (shared by all its chains).
func (g *Gamma) Chain(i int) chains.Chain {
	return chains.Chain{Top: g.In.X[i], Bottom: g.In.Y[i], Q: g.In.Q}
}

// LineMiddles returns the middles of all |⁰₀ chains in deterministic order.
// Under the reference adversary these are detached at round 1 and connected
// into a line in exactly this order. Empty when DISJOINTNESSCP(x, y) = 1.
func (g *Gamma) LineMiddles() []int {
	var out []int
	for i := range g.Groups {
		if g.Chain(i).IsZeroZero() {
			for _, cn := range g.Groups[i] {
				out = append(out, cn.V)
			}
		}
	}
	return out
}

// LineEnd returns the line end L_Γ used as a bridging endpoint when
// DISJOINTNESSCP(x, y) = 0 (the last middle in LineMiddles order), and
// whether a line exists.
func (g *Gamma) LineEnd() (int, bool) {
	line := g.LineMiddles()
	if len(line) == 0 {
		return 0, false
	}
	return line[len(line)-1], true
}

// AddEdges inserts the subnetwork's round-r edges under party p into dst.
func (g *Gamma) AddEdges(dst *graph.Graph, p chains.Party, r int, mid midReceivesFn) {
	for i := range g.Groups {
		c := g.Chain(i)
		for _, cn := range g.Groups[i] {
			addChainEdges(dst, p, r, c, cn, g.A, g.B, mid)
		}
	}
	// Rule 5, reference only: from round 1 the |⁰₀ middles form a line.
	// Alice's and Bob's adversaries never include it — the line's nodes
	// are spoiled for both from round 1.
	if p == chains.Reference && r >= 1 {
		line := g.LineMiddles()
		for i := 0; i+1 < len(line); i++ {
			dst.AddEdge(line[i], line[i+1])
		}
	}
}

// SpoiledFrom fills dst (indexed by global id, pre-initialized to Never)
// with the first round each Γ node is spoiled for party p. B_Γ is spoiled
// for Alice from round 1 and A_Γ for Bob, per Section 4.
func (g *Gamma) SpoiledFrom(dst []int, p chains.Party) {
	switch p {
	case chains.Alice:
		dst[g.B] = 1
	case chains.Bob:
		dst[g.A] = 1
	}
	for i := range g.Groups {
		c := g.Chain(i)
		for _, cn := range g.Groups[i] {
			markSpoiled(dst, p, c, cn)
		}
	}
}

// Nodes returns all global ids of the subnetwork.
func (g *Gamma) Nodes() []int {
	out := make([]int, 0, g.Size())
	for v := g.Base; v < g.Base+g.Size(); v++ {
		out = append(out, v)
	}
	return out
}
