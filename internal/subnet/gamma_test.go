package subnet

import (
	"sort"
	"testing"

	"dyndiam/internal/chains"
	"dyndiam/internal/disjcp"
	"dyndiam/internal/graph"
)

// figure1 returns the paper's Figure 1 instance: n = 4, q = 5, x = 3110,
// y = 2200.
func figure1(t *testing.T) disjcp.Instance {
	t.Helper()
	in, err := disjcp.FromStrings("3110", "2200", 5)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestGammaLayout(t *testing.T) {
	in := figure1(t)
	g := NewGamma(in, 0)
	if g.Size() != GammaSize(4, 5) || g.Size() != 26 {
		t.Fatalf("Size = %d, want 26", g.Size())
	}
	if g.A != 0 || g.B != 1 {
		t.Fatalf("specials A=%d B=%d, want 0, 1", g.A, g.B)
	}
	// 4 groups x (q-1)/2 = 2 chains x 3 nodes, contiguous after specials.
	seen := map[int]bool{0: true, 1: true}
	for i := range g.Groups {
		if len(g.Groups[i]) != 2 {
			t.Fatalf("group %d has %d chains, want 2", i, len(g.Groups[i]))
		}
		for _, cn := range g.Groups[i] {
			for _, v := range []int{cn.U, cn.V, cn.W} {
				if seen[v] {
					t.Fatalf("node %d assigned twice", v)
				}
				seen[v] = true
			}
		}
	}
	if len(seen) != g.Size() {
		t.Fatalf("assigned %d ids, want %d", len(seen), g.Size())
	}
}

func TestGammaLineMiddles(t *testing.T) {
	in := figure1(t)
	g := NewGamma(in, 0)
	line := g.LineMiddles()
	// Only group 3 is (0, 0); it contributes (q-1)/2 = 2 middles.
	if len(line) != 2 {
		t.Fatalf("LineMiddles = %v, want 2 middles", line)
	}
	for _, v := range line {
		found := false
		for _, cn := range g.Groups[3] {
			if cn.V == v {
				found = true
			}
		}
		if !found {
			t.Errorf("line middle %d is not a group-3 middle", v)
		}
	}
	end, ok := g.LineEnd()
	if !ok || end != line[len(line)-1] {
		t.Errorf("LineEnd = %d, %v; want %d, true", end, ok, line[len(line)-1])
	}
}

func TestGammaFigure1RoundSchedule(t *testing.T) {
	// Figure 1 (all middles receiving): round-by-round edge status per
	// group under the three adversaries.
	in := figure1(t)
	net, err := NewCFlood(in)
	if err != nil {
		t.Fatal(err)
	}
	g := net.Gamma
	type want struct {
		party       chains.Party
		round       int
		group       int
		top, bottom bool
	}
	cases := []want{
		// Group 3 is |⁰₀: reference removes both at round 1; Alice
		// removes only the top (she cannot see the bottom labels);
		// Bob removes only the bottom.
		{chains.Reference, 1, 3, false, false},
		{chains.Alice, 1, 3, false, true},
		{chains.Bob, 1, 3, true, false},
		// Group 2 is |¹₀: Bob (bottom 0 = 2t, t=0) removes the bottom
		// at round 1; the reference (rule 4, middles receiving) waits
		// until round 2; Alice (top 1 = 2t+1, t=0) removes at round 2.
		{chains.Reference, 1, 2, true, true},
		{chains.Bob, 1, 2, true, false},
		{chains.Alice, 1, 2, true, true},
		{chains.Reference, 2, 2, true, false},
		{chains.Alice, 2, 2, true, false},
		// Group 1 is |¹₂: rule 2 (t=1): bottom removed at round 2 by
		// everyone (all three adversaries agree on this form).
		{chains.Reference, 1, 1, true, true},
		{chains.Reference, 2, 1, true, false},
		{chains.Alice, 2, 1, true, false},
		{chains.Bob, 2, 1, true, false},
		// Group 0 is |³₂: rule 4 (t=1): reference removes the bottom at
		// round 3 (middles receiving); Alice at round 3; Bob (bottom
		// 2 = 2t, t=1) at round 2.
		{chains.Reference, 2, 0, true, true},
		{chains.Bob, 2, 0, true, false},
		{chains.Alice, 2, 0, true, true},
	}
	for _, c := range cases {
		topo := net.Topology(c.party, c.round, nil)
		cn := g.Groups[c.group][0]
		if got := topo.HasEdge(cn.U, cn.V); got != c.top {
			t.Errorf("%v round %d group %d: top edge = %v, want %v", c.party, c.round, c.group, got, c.top)
		}
		if got := topo.HasEdge(cn.V, cn.W); got != c.bottom {
			t.Errorf("%v round %d group %d: bottom edge = %v, want %v", c.party, c.round, c.group, got, c.bottom)
		}
	}
}

func TestGammaLineAppearsOnlyForReference(t *testing.T) {
	in := figure1(t)
	net, err := NewCFlood(in)
	if err != nil {
		t.Fatal(err)
	}
	line := net.Gamma.LineMiddles()
	refTopo := net.Topology(chains.Reference, 1, nil)
	if !refTopo.HasEdge(line[0], line[1]) {
		t.Error("reference round 1: line edge missing")
	}
	for _, p := range []chains.Party{chains.Alice, chains.Bob} {
		topo := net.Topology(p, 1, nil)
		if topo.HasEdge(line[0], line[1]) {
			t.Errorf("%v sees the Γ line", p)
		}
	}
	// Round 0: no line yet.
	if net.Topology(chains.Reference, 0, nil).HasEdge(line[0], line[1]) {
		t.Error("line present at round 0")
	}
}

func TestGammaSpecialEdgesPermanent(t *testing.T) {
	in := figure1(t)
	g := NewGamma(in, 0)
	for r := 0; r < 10; r++ {
		topo := graph.New(g.Size())
		g.AddEdges(topo, chains.Reference, r, nil)
		for i := range g.Groups {
			for _, cn := range g.Groups[i] {
				if !topo.HasEdge(g.A, cn.U) {
					t.Fatalf("round %d: A-U edge missing", r)
				}
				if !topo.HasEdge(g.B, cn.W) {
					t.Fatalf("round %d: B-W edge missing", r)
				}
			}
		}
	}
}

func TestGammaSpoiled(t *testing.T) {
	in := figure1(t)
	net, err := NewCFlood(in)
	if err != nil {
		t.Fatal(err)
	}
	g := net.Gamma
	sa := net.SpoiledFrom(chains.Alice)
	sb := net.SpoiledFrom(chains.Bob)
	sr := net.SpoiledFrom(chains.Reference)
	if sa[g.B] != 1 || sa[g.A] != Never {
		t.Errorf("Alice: B_Γ spoiled from %d (want 1), A_Γ from %d (want Never)", sa[g.B], sa[g.A])
	}
	if sb[g.A] != 1 || sb[g.B] != Never {
		t.Errorf("Bob: A_Γ spoiled from %d (want 1), B_Γ from %d (want Never)", sb[g.A], sb[g.B])
	}
	for v := range sr {
		if sr[v] != Never {
			t.Fatalf("reference: node %d spoiled", v)
		}
	}
	// Line middles (group 3, x=y=0): spoiled from round 1 for both.
	for _, v := range g.LineMiddles() {
		if sa[v] != 1 || sb[v] != 1 {
			t.Errorf("line middle %d: spoiled (alice %d, bob %d), want 1, 1", v, sa[v], sb[v])
		}
	}
	// Group 0 (x=3 odd): W spoiled for Alice from round (3-1)/2+1 = 2;
	// U and V never.
	cn := g.Groups[0][0]
	if sa[cn.W] != 2 || sa[cn.V] != Never || sa[cn.U] != Never {
		t.Errorf("group 0 Alice spoils = U %d V %d W %d, want Never Never 2",
			sa[cn.U], sa[cn.V], sa[cn.W])
	}
}

func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}
