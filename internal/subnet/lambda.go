package subnet

import (
	"dyndiam/internal/chains"
	"dyndiam/internal/disjcp"
	"dyndiam/internal/graph"
)

// Lambda is a type-Λ subnetwork over global ids [Base, Base+Size). The same
// type doubles as the type-Υ subnetwork (Section 5): Υ is a Λ whose nodes
// are always spoiled for both parties and which exists only when
// DISJOINTNESSCP(x, y) = 0.
//
// Layout: A = Base, B = Base+1, then centipedes in index order, chains
// within a centipede in order, nodes U, V, W within a chain. The middles of
// a centipede's chains form a permanent horizontal line.
type Lambda struct {
	In   disjcp.Instance
	Base int
	A, B int
	// Centi[i][j] is the j-th chain (0-based) of centipede i, with labels
	// (min(x_i+2j, q-1), min(y_i+2j, q-1)).
	Centi [][]ChainNodes
}

// LambdaSize returns the node count of a type-Λ subnetwork for parameters
// (n, q): 3n(q+1)/2 + 2.
func LambdaSize(n, q int) int { return 3*n*(q+1)/2 + 2 }

// NewLambda lays out the type-Λ subnetwork for the instance starting at id
// base.
func NewLambda(in disjcp.Instance, base int) *Lambda {
	m := (in.Q + 1) / 2
	l := &Lambda{In: in, Base: base, A: base, B: base + 1}
	next := base + 2
	l.Centi = make([][]ChainNodes, in.N)
	for i := 0; i < in.N; i++ {
		l.Centi[i] = make([]ChainNodes, m)
		for j := 0; j < m; j++ {
			l.Centi[i][j] = ChainNodes{U: next, V: next + 1, W: next + 2}
			next += 3
		}
	}
	return l
}

// Size returns the number of nodes in the subnetwork.
func (l *Lambda) Size() int { return LambdaSize(l.In.N, l.In.Q) }

// Chain returns the label chain of chain j (0-based) in centipede i:
// labels (min(x_i+2j, q-1), min(y_i+2j, q-1)), per Section 5 (with the
// paper's 1-based j, min(x_i+2j-2, q-1)).
func (l *Lambda) Chain(i, j int) chains.Chain {
	q := l.In.Q
	top := l.In.X[i] + 2*j
	if top > q-1 {
		top = q - 1
	}
	bottom := l.In.Y[i] + 2*j
	if bottom > q-1 {
		bottom = q - 1
	}
	return chains.Chain{Top: top, Bottom: bottom, Q: q}
}

// MountingPoints returns the middles of all |⁰₀ chains — one per centipede
// whose index i has (x_i, y_i) = (0, 0). Empty iff DISJOINTNESSCP(x, y) = 1.
func (l *Lambda) MountingPoints() []int {
	var out []int
	for i := range l.Centi {
		if l.Chain(i, 0).IsZeroZero() {
			out = append(out, l.Centi[i][0].V)
		}
	}
	return out
}

// AddEdges inserts the subnetwork's round-r edges under party p into dst.
// The horizontal centipede lines are permanent; the vertical chain edges
// follow the removal rules (with rule 5 replaced by the Λ-cascade rule 5').
func (l *Lambda) AddEdges(dst *graph.Graph, p chains.Party, r int, mid midReceivesFn) {
	for i := range l.Centi {
		for j := range l.Centi[i] {
			addChainEdges(dst, p, r, l.Chain(i, j), l.Centi[i][j], l.A, l.B, mid)
			if j+1 < len(l.Centi[i]) {
				dst.AddEdge(l.Centi[i][j].V, l.Centi[i][j+1].V)
			}
		}
	}
}

// SpoiledFrom fills dst with the first round each Λ node is spoiled for
// party p (same rules as type-Γ, with A_Λ/B_Λ in place of A_Γ/B_Γ).
func (l *Lambda) SpoiledFrom(dst []int, p chains.Party) {
	switch p {
	case chains.Alice:
		dst[l.B] = 1
	case chains.Bob:
		dst[l.A] = 1
	}
	for i := range l.Centi {
		for j := range l.Centi[i] {
			markSpoiled(dst, p, l.Chain(i, j), l.Centi[i][j])
		}
	}
}

// Nodes returns all global ids of the subnetwork.
func (l *Lambda) Nodes() []int {
	out := make([]int, 0, l.Size())
	for v := l.Base; v < l.Base+l.Size(); v++ {
		out = append(out, v)
	}
	return out
}
