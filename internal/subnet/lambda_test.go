package subnet

import (
	"testing"

	"dyndiam/internal/chains"
	"dyndiam/internal/disjcp"
	"dyndiam/internal/graph"
)

// figure2Instance gives one centipede with x_i = y_i = 0 at q = 7
// (Figure 2) and figure3Instance one with x_i = 2, y_i = 3 (Figure 3).
func lambdaFor(t *testing.T, x, y string, q int) *Lambda {
	t.Helper()
	in, err := disjcp.FromStrings(x, y, q)
	if err != nil {
		t.Fatal(err)
	}
	return NewLambda(in, 0)
}

func TestLambdaLayoutAndLabels(t *testing.T) {
	l := lambdaFor(t, "0", "0", 7)
	if l.Size() != LambdaSize(1, 7) || l.Size() != 14 {
		t.Fatalf("Size = %d, want 14", l.Size())
	}
	// Chains of the (0,0) centipede carry labels (0,0), (2,2), (4,4), (6,6).
	wantLabels := [][2]int{{0, 0}, {2, 2}, {4, 4}, {6, 6}}
	for j, want := range wantLabels {
		c := l.Chain(0, j)
		if c.Top != want[0] || c.Bottom != want[1] {
			t.Errorf("chain %d labels = (%d, %d), want (%d, %d)", j, c.Top, c.Bottom, want[0], want[1])
		}
	}
}

func TestLambdaFigure3Labels(t *testing.T) {
	l := lambdaFor(t, "2", "3", 7)
	// x=2, y=3 at q=7: labels (2,3), (4,5), (6,6), (6,6).
	wantLabels := [][2]int{{2, 3}, {4, 5}, {6, 6}, {6, 6}}
	for j, want := range wantLabels {
		c := l.Chain(0, j)
		if c.Top != want[0] || c.Bottom != want[1] {
			t.Errorf("chain %d labels = (%d, %d), want (%d, %d)", j, c.Top, c.Bottom, want[0], want[1])
		}
	}
	if len(l.MountingPoints()) != 0 {
		t.Error("non-zero centipede must have no mounting point")
	}
}

func TestLambdaFigure2Cascade(t *testing.T) {
	// Figure 2: the (0,0) centipede's chains are removed in a cascade:
	// chain j (labels (2j, 2j)) loses both edges at round j+1; the final
	// |⁶₆ chain is untouched.
	l := lambdaFor(t, "0", "0", 7)
	for r := 0; r <= 4; r++ {
		topo := graph.New(l.Size())
		l.AddEdges(topo, chains.Reference, r, nil)
		for j := 0; j < 4; j++ {
			cn := l.Centi[0][j]
			wantPresent := j == 3 || r < j+1
			if topo.HasEdge(cn.U, cn.V) != wantPresent || topo.HasEdge(cn.V, cn.W) != wantPresent {
				t.Errorf("round %d chain %d: edges present=(%v,%v), want %v",
					r, j, topo.HasEdge(cn.U, cn.V), topo.HasEdge(cn.V, cn.W), wantPresent)
			}
			// Horizontal line edges are permanent.
			if j+1 < 4 && !topo.HasEdge(cn.V, l.Centi[0][j+1].V) {
				t.Errorf("round %d: horizontal edge %d-%d missing", r, j, j+1)
			}
		}
	}
}

func TestLambdaMountingPoint(t *testing.T) {
	l := lambdaFor(t, "0", "0", 7)
	mounts := l.MountingPoints()
	if len(mounts) != 1 || mounts[0] != l.Centi[0][0].V {
		t.Fatalf("MountingPoints = %v, want [%d]", mounts, l.Centi[0][0].V)
	}
}

// TestMountingPointInfluenceDelay verifies the Section 5 claim that a
// mounting point takes Ω(q) rounds to causally affect the rest of the
// subnetwork: the cascade always removes a chain one round before the
// mounting point's influence arrives.
func TestMountingPointInfluenceDelay(t *testing.T) {
	for _, q := range []int{7, 11, 15} {
		in, err := disjcp.FromStrings("0", "0", q)
		if err != nil {
			t.Fatal(err)
		}
		l := NewLambda(in, 0)
		mount := l.MountingPoints()[0]
		// Influence propagation from the mounting point at time 0.
		influenced := map[int]bool{mount: true}
		horizon := (q - 1) / 2
		reachedSpecialAt := -1
		for r := 1; r <= horizon; r++ {
			topo := graph.New(l.Size())
			l.AddEdges(topo, chains.Reference, r, nil)
			next := map[int]bool{}
			for v := range influenced {
				next[v] = true
				topo.ForEachNeighbor(v, func(u int) { next[u] = true })
			}
			influenced = next
			if (influenced[l.A] || influenced[l.B]) && reachedSpecialAt == -1 {
				reachedSpecialAt = r
			}
		}
		if reachedSpecialAt != -1 {
			t.Errorf("q=%d: mounting point influenced A/B at round %d <= horizon %d",
				q, reachedSpecialAt, horizon)
		}
	}
}

// TestSimultaneousRemovalWouldSpoilEarly is the ablation the paper discusses
// in Section 5: if the cascade is replaced by removing all |²ᵗ_2t chains at
// round 1, a middle node's influence escapes to A_Λ quickly, which would
// break Lemma 4. We verify the escape is possible under the broken schedule
// and impossible under the cascade.
func TestSimultaneousRemovalWouldSpoilEarly(t *testing.T) {
	const q = 11
	in, err := disjcp.FromStrings("0", "0", q)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLambda(in, 0)
	horizon := (q - 1) / 2

	// Broken schedule: every equal-label chain except the final
	// |^(q-1)_(q-1) is removed at round 1. A middle that sits next to the
	// surviving chain is then spoiled (its chain is gone, so neither
	// party can simulate it) yet its influence reaches A_Λ in ~3 rounds
	// via the permanent horizontal line — well within the horizon. Under
	// the paper's cascade the same escape is impossible: removals always
	// outrun influence by one round.
	escape := func(start int, simultaneous bool) int {
		influenced := map[int]bool{start: true}
		for r := 1; r <= 4*q; r++ {
			topo := graph.New(l.Size())
			if simultaneous {
				// Rebuild with every non-final equal chain removed.
				addLambdaSimultaneous(l, topo, r)
			} else {
				l.AddEdges(topo, chains.Reference, r, nil)
			}
			next := map[int]bool{}
			for v := range influenced {
				next[v] = true
				topo.ForEachNeighbor(v, func(u int) { next[u] = true })
			}
			influenced = next
			if influenced[l.A] {
				return r
			}
		}
		return -1
	}
	// The second-to-last chain's middle: one line-hop from the surviving
	// |^(q-1)_(q-1) chain, so its influence escapes in ~3 rounds once its
	// own chain is gone.
	midLate := l.Centi[0][len(l.Centi[0])-2].V
	brokenEscape := escape(midLate, true)
	cascadeEscape := escape(l.MountingPoints()[0], false)
	if brokenEscape == -1 || cascadeEscape == -1 {
		t.Fatalf("escapes never happened: broken=%d cascade=%d", brokenEscape, cascadeEscape)
	}
	if brokenEscape > horizon {
		t.Errorf("simultaneous removal: |⁴₄ middle escaped at %d, expected within horizon %d",
			brokenEscape, horizon)
	}
	if cascadeEscape <= horizon {
		t.Errorf("cascade: mounting point escaped at %d <= horizon %d", cascadeEscape, horizon)
	}
}

// addLambdaSimultaneous renders the broken "remove everything at round 1"
// variant used by the ablation test above.
func addLambdaSimultaneous(l *Lambda, dst *graph.Graph, r int) {
	for i := range l.Centi {
		for j := range l.Centi[i] {
			c := l.Chain(i, j)
			cn := l.Centi[i][j]
			dst.AddEdge(l.A, cn.U)
			dst.AddEdge(l.B, cn.W)
			removed := c.Top == c.Bottom && c.Top != c.Q-1 && r >= 1
			if !removed {
				if c.TopEdgePresent(chains.Reference, r, true) {
					dst.AddEdge(cn.U, cn.V)
				}
				if c.BottomEdgePresent(chains.Reference, r, true) {
					dst.AddEdge(cn.V, cn.W)
				}
			}
			if j+1 < len(l.Centi[i]) {
				dst.AddEdge(cn.V, l.Centi[i][j+1].V)
			}
		}
	}
}
