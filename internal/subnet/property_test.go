package subnet

import (
	"testing"
	"testing/quick"

	"dyndiam/internal/chains"
	"dyndiam/internal/disjcp"
	"dyndiam/internal/rng"
)

// TestCFloodLayoutIsPartition: every global id in [0, N) belongs to exactly
// one structural role (special, chain node), for random instances.
func TestCFloodLayoutIsPartition(t *testing.T) {
	f := func(seed uint64, nRaw, qRaw uint8) bool {
		n := int(nRaw%4) + 1
		q := 2*int(qRaw%6) + 5
		in := disjcp.Random(n, q, rng.New(seed))
		net, err := NewCFlood(in)
		if err != nil {
			return false
		}
		seen := make([]int, net.N)
		mark := func(v int) {
			seen[v]++
		}
		mark(net.Gamma.A)
		mark(net.Gamma.B)
		for i := range net.Gamma.Groups {
			for _, cn := range net.Gamma.Groups[i] {
				mark(cn.U)
				mark(cn.V)
				mark(cn.W)
			}
		}
		mark(net.Lambda.A)
		mark(net.Lambda.B)
		for i := range net.Lambda.Centi {
			for _, cn := range net.Lambda.Centi[i] {
				mark(cn.U)
				mark(cn.V)
				mark(cn.W)
			}
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestTopologyVertexCountStable: every party's rendering spans the full id
// space in every round (edges differ; the vertex set never does).
func TestTopologyVertexCountStable(t *testing.T) {
	src := rng.New(12)
	in := disjcp.RandomZero(2, 9, 1, src)
	net, err := NewCFlood(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []chains.Party{chains.Reference, chains.Alice, chains.Bob} {
		for r := 0; r <= 2*in.Q; r++ {
			if got := net.Topology(p, r, nil).N(); got != net.N {
				t.Fatalf("party %v round %d: %d vertices, want %d", p, r, got, net.N)
			}
		}
	}
}

// TestSpoiledTimesBounded: spoiled-from values are either Never, 0 (Υ), or
// within [1, (q+1)/2 + 1] — nothing spoils later than one round past the
// horizon (labels cap at q-1).
func TestSpoiledTimesBounded(t *testing.T) {
	f := func(seed uint64, qRaw uint8) bool {
		q := 2*int(qRaw%6) + 5
		in := disjcp.Random(2, q, rng.New(seed))
		net, err := NewCFlood(in)
		if err != nil {
			return false
		}
		for _, p := range []chains.Party{chains.Alice, chains.Bob} {
			for _, s := range net.SpoiledFrom(p) {
				if s == Never {
					continue
				}
				if s < 1 || s > (q+1)/2+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestOneInstancesHaveNoSpecialStructure: for answer-1 instances, the Γ
// subnetwork has no line and the Λ subnetwork no mounting points — and the
// converse for answer-0 instances.
func TestOneInstancesHaveNoSpecialStructure(t *testing.T) {
	f := func(seed uint64, qRaw uint8, zero bool) bool {
		q := 2*int(qRaw%6) + 5
		src := rng.New(seed)
		var in disjcp.Instance
		if zero {
			in = disjcp.RandomZero(3, q, 1, src)
		} else {
			in = disjcp.RandomOne(3, q, src)
		}
		net, err := NewCFlood(in)
		if err != nil {
			return false
		}
		hasLine := len(net.Gamma.LineMiddles()) > 0
		hasMount := len(net.Lambda.MountingPoints()) > 0
		if zero {
			// One (0,0) index yields (q-1)/2 line middles and one mount.
			return hasLine && hasMount && len(net.Gamma.LineMiddles()) >= (q-1)/2
		}
		return !hasLine && !hasMount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestNonSpoiledNodesKeepHubAttachment: at every round within the horizon,
// every node that is non-spoiled for Alice remains connected (in Alice's
// topology) to one of her always-known specials A_Γ/A_Λ through non-spoiled
// nodes only — the structural fact that makes her partial simulation a
// connected, self-contained computation.
func TestNonSpoiledNodesKeepHubAttachment(t *testing.T) {
	src := rng.New(9)
	for trial := 0; trial < 10; trial++ {
		q := []int{5, 9, 13}[trial%3]
		in := disjcp.Random(2, q, src)
		net, err := NewCFlood(in)
		if err != nil {
			t.Fatal(err)
		}
		spoiled := net.SpoiledFrom(chains.Alice)
		for r := 1; r <= net.Horizon(); r++ {
			topo := net.Topology(chains.Alice, r, nil)
			// BFS from the A-specials through non-spoiled nodes.
			reach := map[int]bool{net.Gamma.A: true, net.Lambda.A: true}
			queue := []int{net.Gamma.A, net.Lambda.A}
			for len(queue) > 0 {
				v := queue[0]
				queue = queue[1:]
				topo.ForEachNeighbor(v, func(u int) {
					if !reach[u] && r < spoiled[u] {
						reach[u] = true
						queue = append(queue, u)
					}
				})
			}
			for v := 0; v < net.N; v++ {
				if r < spoiled[v] && v != net.Gamma.B && v != net.Lambda.B && !reach[v] {
					t.Fatalf("q=%d r=%d: non-spoiled node %d unreachable from A-specials (x=%v y=%v)",
						q, r, v, in.X, in.Y)
				}
			}
		}
	}
}
