// Package subnet builds the paper's three subnetwork types and their
// compositions (Sections 3-6):
//
//   - Type-Γ (gamma.go): n groups of (q-1)/2 three-node chains between the
//     special nodes A_Γ and B_Γ; group i's chains carry labels (x_i, y_i).
//     When DISJOINTNESSCP(x, y) = 0, the |⁰₀ chains' middles are detached at
//     round 1 and arranged into a line of Ω(q) nodes.
//   - Type-Λ (lambda.go): n centipede structures of (q+1)/2 chains whose
//     middles form a horizontal line; chain j of centipede i carries labels
//     (min(x_i+2j, q-1), min(y_i+2j, q-1)) (j zero-based). The middles of
//     |⁰₀ chains are mounting points, protected by cascading edge removals.
//   - Type-Υ: a second type-Λ subnetwork that exists only when
//     DISJOINTNESSCP(x, y) = 0 and is empty otherwise; its nodes are always
//     spoiled for both parties.
//
// Compositions (compose.go) join subnetworks with fixed bridging edge sets,
// yielding the dynamic networks behind Theorem 6 (Γ+Λ, for CFLOOD) and
// Theorem 7 (Λ+Υ, for CONSENSUS). Every part can be rendered under any of
// the three adversaries of package chains, and the per-node spoiled-from
// schedules of the lower-bound proofs are exposed for the two-party
// simulation harness and its referee.
package subnet

import (
	"dyndiam/internal/chains"
	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
)

// ChainNodes are the global ids of one chain's three nodes, top to bottom.
type ChainNodes struct {
	U, V, W int
}

// Never re-exports chains.Never: the "not within any horizon" round.
const Never = chains.Never

// midReceivesFn answers whether node v receives in the current round; the
// reference adversary consults it for rules 3/4. A nil function defaults to
// "receiving", the canonical choice used when rendering topologies outside
// a protocol execution (e.g. for diameter measurement of the figures).
type midReceivesFn func(v int) bool

func midRecv(actions []dynet.Action) midReceivesFn {
	if actions == nil {
		return nil
	}
	return func(v int) bool { return actions[v] == dynet.Receive }
}

func (f midReceivesFn) at(v int) bool {
	if f == nil {
		return true
	}
	return f(v)
}

// markSpoiled records chain-node spoiled times into dst (a slice over the
// global id space, initialized to Never).
func markSpoiled(dst []int, p chains.Party, c chains.Chain, nodes ChainNodes) {
	u, v, w := c.SpoiledFrom(p)
	if u < dst[nodes.U] {
		dst[nodes.U] = u
	}
	if v < dst[nodes.V] {
		dst[nodes.V] = v
	}
	if w < dst[nodes.W] {
		dst[nodes.W] = w
	}
}

// addChainEdges inserts the surviving intra-chain edges of one chain for
// round r under party p, plus the permanent edges to the subnetwork's
// special nodes A (top) and B (bottom).
func addChainEdges(dst *graph.Graph, p chains.Party, r int, c chains.Chain, nodes ChainNodes, a, b int, mid midReceivesFn) {
	dst.AddEdge(a, nodes.U)
	dst.AddEdge(b, nodes.W)
	mr := true
	if _, cond := c.MidActionRound(); cond {
		mr = mid.at(nodes.V)
	}
	if c.TopEdgePresent(p, r, mr) {
		dst.AddEdge(nodes.U, nodes.V)
	}
	if c.BottomEdgePresent(p, r, mr) {
		dst.AddEdge(nodes.V, nodes.W)
	}
}
