package twoparty

import (
	"testing"

	"dyndiam/internal/disjcp"
	"dyndiam/internal/dynet"
	"dyndiam/internal/protocols/flood"
	"dyndiam/internal/rng"
	"dyndiam/internal/subnet"
)

// TestReductionDeterministic: identical setups (same public coins) produce
// identical claims and bit counts — the property that makes every
// experiment in this repository reproducible from its seed.
func TestReductionDeterministic(t *testing.T) {
	in := disjcp.RandomZero(2, 21, 1, rng.New(4))
	net, err := subnet.NewCFlood(in)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		setup := FromCFlood(net, flood.CFlood{}, 77, map[string]int64{flood.ExtraD: 10})
		res, err := Run(setup, false)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Claim != b.Claim || a.BitsAliceToBob != b.BitsAliceToBob || a.BitsBobToAlice != b.BitsBobToAlice {
		t.Fatalf("nondeterministic reduction: %+v vs %+v", a, b)
	}
}

// TestRefereeAgnosticToRefereeing: running with and without the referee
// must not change the two-party outcome (the referee only observes).
func TestRefereeAgnosticToRefereeing(t *testing.T) {
	in := disjcp.RandomOne(2, 17, rng.New(8))
	net, err := subnet.NewCFlood(in)
	if err != nil {
		t.Fatal(err)
	}
	setup := FromCFlood(net, flood.CFlood{}, 5, map[string]int64{flood.ExtraD: 10})
	with, err := Run(setup, true)
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(setup, false)
	if err != nil {
		t.Fatal(err)
	}
	if with.Claim != without.Claim ||
		with.BitsAliceToBob != without.BitsAliceToBob ||
		with.BitsBobToAlice != without.BitsBobToAlice {
		t.Fatalf("referee changed the outcome: %+v vs %+v", with, without)
	}
}

// TestLemma5AcrossSeeds runs the referee over many seeds on one instance —
// coin-flip coverage for the simulation soundness claim.
func TestLemma5AcrossSeeds(t *testing.T) {
	in := disjcp.RandomZero(2, 13, 1, rng.New(2))
	net, err := subnet.NewCFlood(in)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 20; seed++ {
		setup := FromCFlood(net, flood.PFlood{}, seed, map[string]int64{
			flood.ExtraRounds: 1 << 20, // never confirm; pure gossip dynamics
		})
		res, err := Run(setup, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.LemmaViolations) != 0 {
			t.Fatalf("seed %d: %v", seed, res.LemmaViolations[0])
		}
	}
}

// TestLemma5WithJunkOracle: the simulation soundness machinery is fully
// protocol-agnostic — even an "oracle" that sends coin-driven random bytes
// (dynet.JunkProtocol) is simulated exactly: its per-node behavior is a
// deterministic function of public coins and deliveries, which is all
// Lemma 5 needs.
func TestLemma5WithJunkOracle(t *testing.T) {
	in := disjcp.RandomZero(2, 13, 1, rng.New(6))
	net, err := subnet.NewCFlood(in)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 5; seed++ {
		setup := FromCFlood(net, dynet.JunkProtocol{}, seed, nil)
		res, err := Run(setup, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.LemmaViolations) != 0 {
			t.Fatalf("seed %d: %v", seed, res.LemmaViolations[0])
		}
		if res.Claim {
			t.Error("junk oracle cannot decide (its machines never output)")
		}
	}
}
