package twoparty

import (
	"testing"

	"dyndiam/internal/chains"
	"dyndiam/internal/disjcp"
	"dyndiam/internal/obs"
	"dyndiam/internal/protocols/flood"
	"dyndiam/internal/rng"
	"dyndiam/internal/subnet"
)

// TestReductionObserverEvents checks the reduction's event stream: spoil
// marks cover exactly the (party, node) pairs whose spoil boundary falls
// inside the horizon, forwarded-special sends account for every forwarded
// bit per direction, and the metrics counters agree with the Result.
func TestReductionObserverEvents(t *testing.T) {
	src := rng.New(11)
	in := disjcp.Random(2, 13, src)
	net, err := subnet.NewCFlood(in)
	if err != nil {
		t.Fatal(err)
	}
	setup := FromCFlood(net, flood.CFlood{}, 5, map[string]int64{flood.ExtraD: 10})
	ring := obs.NewRing(1 << 16)
	reg := obs.NewRegistry()
	setup.Obs = ring
	setup.Metrics = reg
	res, err := Run(setup, true)
	if err != nil {
		t.Fatal(err)
	}
	if ring.Dropped() != 0 {
		t.Fatalf("ring dropped %d events", ring.Dropped())
	}

	spoils := 0
	bits := map[chains.Party]int{}
	for _, ev := range ring.Events() {
		switch ev.Kind {
		case obs.KindSpoilMark:
			spoils++
			if int(ev.Round) > setup.Horizon {
				t.Fatalf("spoil mark beyond the horizon: %+v", ev)
			}
			if from := setup.Spoiled[chains.Party(ev.Track)][ev.Node]; from != int(ev.Round) {
				t.Fatalf("spoil mark round %d, schedule says %d", ev.Round, from)
			}
		case obs.KindSend:
			bits[chains.Party(ev.Track)] += int(ev.A)
		default:
			t.Fatalf("unexpected event kind %v from the reduction", ev.Kind)
		}
	}
	wantSpoils := 0
	for _, p := range []chains.Party{chains.Alice, chains.Bob} {
		for _, from := range setup.Spoiled[p] {
			if from <= setup.Horizon {
				wantSpoils++
			}
		}
	}
	if spoils != wantSpoils {
		t.Fatalf("observed %d spoil marks, schedule has %d in horizon", spoils, wantSpoils)
	}
	if bits[chains.Alice] != res.BitsAliceToBob || bits[chains.Bob] != res.BitsBobToAlice {
		t.Fatalf("observed forwarded bits A=%d B=%d, result says %d/%d",
			bits[chains.Alice], bits[chains.Bob], res.BitsAliceToBob, res.BitsBobToAlice)
	}

	for _, m := range []struct {
		name string
		want int64
	}{
		{"reduction_rounds_total", int64(res.Rounds)},
		{"reduction_bits_alice_to_bob", int64(res.BitsAliceToBob)},
		{"reduction_bits_bob_to_alice", int64(res.BitsBobToAlice)},
		{"reduction_spoiled_in_horizon", int64(wantSpoils)},
		{"reduction_lemma_violations", int64(len(res.LemmaViolations))},
	} {
		if got := reg.Counter(m.name).Value(); got != m.want {
			t.Errorf("%s = %d want %d", m.name, got, m.want)
		}
	}
}
