// Package twoparty implements the paper's reduction harness (Sections 3
// and 6): Alice and Bob solve a DISJOINTNESSCP instance by jointly
// simulating an oracle protocol over a composed dynamic network, exchanging
// only the messages of the special nodes (A_Γ/A_Λ from Alice, B_Γ/B_Λ from
// Bob) and counting every bit.
//
// Each party simulates exactly the nodes that are non-spoiled for it, under
// its own simulated adversary, per the induction of Lemma 5:
//
//   - A node is stepped in round r iff r <= spoiledFrom(node): a node
//     spoiled from round r is stepped one last time in round r, because a
//     node that is non-spoiled in round r-1 may still have to *send* in
//     round r (its state through r-1 is known exactly).
//   - A node is delivered to in round r iff r < spoiledFrom(node): its
//     incoming messages are the round-r messages of the senders among its
//     neighbors under the party's simulated adversary; Lemma 3/4 guarantee
//     each such sender is either the opposite special (whose message was
//     forwarded) or was non-spoiled in round r-1 (so the party computed its
//     message itself).
//
// The optional referee runs the true execution under the reference
// adversary with the same public coins and verifies, round by round, that
// every non-spoiled node's action, outgoing message, and inbox in the
// party simulation are identical to the reference — the empirical content
// of Lemma 5 (experiment E7 in DESIGN.md).
package twoparty

import (
	"bytes"
	"fmt"

	"dyndiam/internal/chains"
	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
	"dyndiam/internal/obs"
	"dyndiam/internal/rng"
	"dyndiam/internal/subnet"
)

// Setup describes one reduction run. Use FromCFlood or FromConsensus to
// build one from a composition network.
type Setup struct {
	// ActualN is the reference network's node count; node ids are
	// [0, ActualN).
	ActualN int
	// CfgN is the id-space size handed to machines as Config.N (the
	// protocol's public knowledge; for the consensus composition this is
	// the potential 2S, since the true N depends on the answer).
	CfgN int
	// Horizon is the number of rounds to simulate: (q-1)/2.
	Horizon int
	// Topology renders the network under a party's adversary.
	Topology func(p chains.Party, r int, actions []dynet.Action) *graph.Graph
	// TopologyInto, when non-nil, is the allocation-free form of Topology:
	// it renders into a caller-owned scratch graph. Run and the referee
	// prefer it, falling back to Topology.
	TopologyInto func(g *graph.Graph, p chains.Party, r int, actions []dynet.Action)
	// Spoiled[party][v] is the first round from whose beginning v is
	// spoiled for the party (subnet.Never if never).
	Spoiled map[chains.Party][]int
	// Forward[party] lists the special nodes whose outgoing messages the
	// party forwards to the other party.
	Forward map[chains.Party][]int
	// Inputs holds the construction-determined node inputs. Entries for
	// nodes spoiled from round 0 (the Υ subnetwork) are known only to
	// the reference execution.
	Inputs []int64
	// DecisionNode is the node Alice monitors (A_Γ for CFLOOD, A_Λ for
	// CONSENSUS): the claim is 1 iff it has output by the horizon.
	DecisionNode int

	Oracle dynet.Protocol
	Extra  map[string]int64
	Seed   uint64

	// Obs, when non-nil, receives reduction events: one SpoilMark per
	// (party, node) whose spoil boundary falls inside the horizon (Track
	// is the party, Round the first spoiled round — the empirical face of
	// Lemmas 3–4), and one Send per forwarded special-node message (Track
	// is the owning party, A the payload bits). Run is single-goroutine,
	// and events follow the fixed Alice-then-Bob, ascending-node order of
	// the simulation, so the stream is deterministic.
	Obs obs.Sink
	// Metrics, when non-nil, accumulates reduction totals: forwarded bits
	// per direction, simulated rounds, spoiled-node counts, and (with the
	// referee) Lemma 5 violations.
	Metrics *obs.Registry
}

// Result reports one reduction run.
type Result struct {
	// Claim is Alice's DISJOINTNESSCP answer: 1 iff the decision node
	// output by the horizon in her simulation.
	Claim bool
	// DecisionOutput is the decision node's output value when Claim.
	DecisionOutput int64
	// BitsAliceToBob / BitsBobToAlice count the payload bits of all
	// forwarded special-node messages.
	BitsAliceToBob int
	BitsBobToAlice int
	// Rounds is the number of simulated rounds (the horizon).
	Rounds int
	// LemmaViolations lists referee findings (empty = Lemma 5 held).
	LemmaViolations []string
	// ReferenceOutputs/Decided capture the reference execution at the
	// horizon, for output-correctness audits.
	ReferenceOutputs []int64
	ReferenceDecided []bool
	// ReferenceMachines exposes the reference machines for protocol-
	// specific audits (e.g. flood.Informed).
	ReferenceMachines []dynet.Machine
}

// FromCFlood builds the Theorem 6 setup: the oracle solves CFLOOD from
// source A_Γ with the token 1.
func FromCFlood(net *subnet.CFloodNet, oracle dynet.Protocol, seed uint64, extra map[string]int64) Setup {
	inputs := make([]int64, net.N)
	inputs[net.Source()] = 1
	return Setup{
		ActualN: net.N,
		CfgN:    net.N,
		Horizon: net.Horizon(),
		Topology: func(p chains.Party, r int, actions []dynet.Action) *graph.Graph {
			return net.Topology(p, r, actions)
		},
		TopologyInto: func(g *graph.Graph, p chains.Party, r int, actions []dynet.Action) {
			net.TopologyInto(g, p, r, actions)
		},
		Spoiled: map[chains.Party][]int{
			chains.Alice: net.SpoiledFrom(chains.Alice),
			chains.Bob:   net.SpoiledFrom(chains.Bob),
		},
		Forward: map[chains.Party][]int{
			chains.Alice: net.ForwardNodes(chains.Alice),
			chains.Bob:   net.ForwardNodes(chains.Bob),
		},
		Inputs:       inputs,
		DecisionNode: net.Source(),
		Oracle:       oracle,
		Extra:        extra,
		Seed:         seed,
	}
}

// FromConsensus builds the Theorem 7 setup: the oracle solves CONSENSUS
// over inputs 0 (Λ) / 1 (Υ), knowing only N' (injected into Extra as
// "nprime").
func FromConsensus(net *subnet.ConsensusNet, oracle dynet.Protocol, seed uint64, extra map[string]int64) Setup {
	merged := map[string]int64{"nprime": int64(net.NPrime)}
	for k, v := range extra {
		merged[k] = v
	}
	return Setup{
		ActualN: net.N,
		CfgN:    net.PotentialN,
		Horizon: net.Horizon(),
		Topology: func(p chains.Party, r int, actions []dynet.Action) *graph.Graph {
			return net.Topology(p, r, actions)
		},
		TopologyInto: func(g *graph.Graph, p chains.Party, r int, actions []dynet.Action) {
			net.TopologyInto(g, p, r, actions)
		},
		Spoiled: map[chains.Party][]int{
			chains.Alice: net.SpoiledFrom(chains.Alice),
			chains.Bob:   net.SpoiledFrom(chains.Bob),
		},
		Forward: map[chains.Party][]int{
			chains.Alice: net.ForwardNodes(chains.Alice),
			chains.Bob:   net.ForwardNodes(chains.Bob),
		},
		Inputs:       net.Inputs(),
		DecisionNode: net.Lambda.A,
		Oracle:       oracle,
		Extra:        merged,
		Seed:         seed,
	}
}

// newMachine constructs the machine for node v exactly as every simulation
// participant must: same coins, same budget, same Extra.
func (s Setup) newMachine(v int) dynet.Machine {
	root := rng.New(s.Seed)
	return s.Oracle.NewMachine(dynet.Config{
		N:      s.CfgN,
		ID:     v,
		Input:  s.Inputs[v],
		Coins:  root.Split(uint64(v) + 1),
		Budget: dynet.Budget(s.CfgN),
		Extra:  s.Extra,
	})
}

// roundRecord captures one node's observable behavior in one round.
type roundRecord struct {
	action  dynet.Action
	payload []byte
	nbits   int
	inbox   []dynet.Message // delivered messages (receivers only)
}

// byteArena carves many small payload copies out of few large chunks. Slices
// it returns are capped, so appending to one cannot clobber a neighbor.
type byteArena struct{ buf []byte }

func (a *byteArena) copyBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	if len(a.buf)+len(b) > cap(a.buf) {
		// Chunks double up to 64 KiB: small runs stay small, long referee
		// runs amortize to a handful of allocations.
		size := 2 * cap(a.buf)
		if size < 1<<10 {
			size = 1 << 10
		}
		if size > 1<<16 {
			size = 1 << 16
		}
		if len(b) > size {
			size = len(b)
		}
		a.buf = make([]byte, 0, size)
	}
	start := len(a.buf)
	a.buf = append(a.buf, b...)
	return a.buf[start:len(a.buf):len(a.buf)]
}

// msgArena is byteArena for inbox snapshots.
type msgArena struct{ buf []dynet.Message }

func (a *msgArena) copyMsgs(msgs []dynet.Message) []dynet.Message {
	if len(msgs) == 0 {
		return nil
	}
	if len(a.buf)+len(msgs) > cap(a.buf) {
		size := 2 * cap(a.buf)
		if size < 1<<6 {
			size = 1 << 6
		}
		if size > 1<<12 {
			size = 1 << 12
		}
		if len(msgs) > size {
			size = len(msgs)
		}
		a.buf = make([]dynet.Message, 0, size)
	}
	start := len(a.buf)
	a.buf = append(a.buf, msgs...)
	return a.buf[start:len(a.buf):len(a.buf)]
}

// topologyInto renders round r under p through the allocation-free form
// when the setup provides one, falling back to the allocating Topology.
func (s Setup) topologyInto(scratch *graph.Graph, p chains.Party, r int, actions []dynet.Action) *graph.Graph {
	if s.TopologyInto != nil {
		s.TopologyInto(scratch, p, r, actions)
		return scratch
	}
	return s.Topology(p, r, actions)
}

// sortInbox orders messages by sender id. Inboxes are assembled by walking
// ascending adjacency lists, so the input is already sorted and this
// insertion sort costs one comparison per message (it avoids the closure
// allocation of sort.Slice).
func sortInbox(msgs []dynet.Message) {
	for i := 1; i < len(msgs); i++ {
		if msgs[i-1].From <= msgs[i].From {
			continue
		}
		m := msgs[i]
		j := i
		for j > 0 && msgs[j-1].From > m.From {
			msgs[j] = msgs[j-1]
			j--
		}
		msgs[j] = m
	}
}

// referenceRun executes the true network under the reference adversary for
// the horizon, recording every node's behavior per round.
func (s Setup) referenceRun() ([][]roundRecord, []dynet.Machine) {
	n := s.ActualN
	ms := make([]dynet.Machine, n)
	for v := 0; v < n; v++ {
		ms[v] = s.newMachine(v)
	}
	// Rounds are carved from one flat arena (see Run); inboxes are staged
	// in a scratch buffer and copied out at their exact size.
	flat := make([]roundRecord, s.Horizon*n)
	records := make([][]roundRecord, s.Horizon+1) // 1-based rounds
	for r := 1; r <= s.Horizon; r++ {
		records[r] = flat[(r-1)*n : r*n : r*n]
	}
	actions := make([]dynet.Action, n)
	outgoing := make([]dynet.Message, n)
	scratch := graph.New(n)
	var payloads byteArena
	var inboxes msgArena
	var inboxBuf []dynet.Message
	for r := 1; r <= s.Horizon; r++ {
		for v := 0; v < n; v++ {
			act, msg := ms[v].Step(r)
			actions[v], outgoing[v] = act, msg
			outgoing[v].From = v
			records[r][v].action = act
			if act == dynet.Send {
				records[r][v].payload = payloads.copyBytes(msg.Payload)
				records[r][v].nbits = msg.NBits
			}
		}
		topo := s.topologyInto(scratch, chains.Reference, r, actions)
		for v := 0; v < n; v++ {
			if actions[v] != dynet.Receive {
				continue
			}
			buf := inboxBuf[:0]
			for _, u32 := range topo.Adj(v) {
				if u := int(u32); actions[u] == dynet.Send {
					buf = append(buf, outgoing[u])
				}
			}
			sortInbox(buf)
			inboxBuf = buf
			inbox := inboxes.copyMsgs(buf)
			records[r][v].inbox = inbox
			ms[v].Deliver(r, inbox)
		}
	}
	return records, ms
}

// Run performs the full reduction. It advances Alice and Bob in lockstep,
// exchanging forwarded special-node messages after each round's Step phase,
// exactly like the two-party protocol would (each party's forwards come
// from its own simulation, never from the reference execution). With
// referee set, the reference execution is run on the side and every
// non-spoiled node's behavior is compared against it (Lemma 5).
func Run(s Setup, referee bool) (*Result, error) {
	if s.Horizon < 1 {
		return nil, fmt.Errorf("twoparty: horizon %d < 1", s.Horizon)
	}
	n := s.ActualN
	parties := []chains.Party{chains.Alice, chains.Bob}
	spoiled := s.Spoiled
	// Per-party state is indexed by node id: dense slices, not maps,
	// because the simulation touches every entry every round.
	opposite := map[chains.Party][]bool{
		chains.Alice: make([]bool, n),
		chains.Bob:   make([]bool, n),
	}
	for _, v := range s.Forward[chains.Bob] {
		opposite[chains.Alice][v] = true
	}
	for _, v := range s.Forward[chains.Alice] {
		opposite[chains.Bob][v] = true
	}

	machines := map[chains.Party][]dynet.Machine{}
	for _, p := range parties {
		machines[p] = make([]dynet.Machine, n)
		for v := 0; v < n; v++ {
			if spoiled[p][v] >= 1 && !opposite[p][v] {
				machines[p][v] = s.newMachine(v)
			}
		}
	}

	res := &Result{Rounds: s.Horizon}
	spoiledInHorizon := 0
	for _, p := range parties {
		for v, from := range spoiled[p] {
			if from <= s.Horizon {
				spoiledInHorizon++
				if s.Obs != nil {
					s.Obs.Emit(obs.Event{Kind: obs.KindSpoilMark, Round: int32(from), Node: int32(v), Track: int32(p)})
				}
			}
		}
	}
	// Per-round records exist only for the referee's Lemma 5 comparison;
	// without it, Run keeps no history and reuses its inbox buffer. Rounds
	// are carved from one flat arena per party.
	var records map[chains.Party][][]roundRecord
	if referee {
		records = map[chains.Party][][]roundRecord{}
		for _, p := range parties {
			flat := make([]roundRecord, s.Horizon*n)
			perRound := make([][]roundRecord, s.Horizon+1)
			for r := 1; r <= s.Horizon; r++ {
				perRound[r] = flat[(r-1)*n : r*n : r*n]
			}
			records[p] = perRound
		}
	}
	actions := map[chains.Party][]dynet.Action{
		chains.Alice: make([]dynet.Action, n), chains.Bob: make([]dynet.Action, n),
	}
	outgoing := map[chains.Party][]dynet.Message{
		chains.Alice: make([]dynet.Message, n), chains.Bob: make([]dynet.Message, n),
	}
	scratch := map[chains.Party]*graph.Graph{
		chains.Alice: graph.New(n), chains.Bob: graph.New(n),
	}
	// forwards[p][v] is the message special v (owned by p) sent this
	// round, as computed by p; hasForward marks validity per round.
	forwards := map[chains.Party][]dynet.Message{
		chains.Alice: make([]dynet.Message, n), chains.Bob: make([]dynet.Message, n),
	}
	hasForward := map[chains.Party][]bool{
		chains.Alice: make([]bool, n), chains.Bob: make([]bool, n),
	}
	var payloads byteArena
	var inboxes msgArena
	var inboxBuf []dynet.Message
	for r := 1; r <= s.Horizon; r++ {
		for _, p := range parties {
			// Hoist the party-keyed lookups out of the per-node loops.
			pSpoiled, pMachines := spoiled[p], machines[p]
			pActions, pOutgoing := actions[p], outgoing[p]
			pForwards, pHas := forwards[p], hasForward[p]
			for _, v := range s.Forward[p] {
				pHas[v] = false
			}
			var pRecords []roundRecord
			if referee {
				pRecords = records[p][r]
			}
			for v, m := range pMachines {
				if m == nil || r > pSpoiled[v] {
					continue
				}
				act, msg := m.Step(r)
				msg.From = v
				pActions[v], pOutgoing[v] = act, msg
				if referee {
					pRecords[v].action = act
					if act == dynet.Send {
						pRecords[v].payload = payloads.copyBytes(msg.Payload)
						pRecords[v].nbits = msg.NBits
					}
				}
			}
			for _, v := range s.Forward[p] {
				if r <= pSpoiled[v] && pActions[v] == dynet.Send {
					pForwards[v] = pOutgoing[v]
					pHas[v] = true
					if p == chains.Alice {
						res.BitsAliceToBob += pOutgoing[v].NBits
					} else {
						res.BitsBobToAlice += pOutgoing[v].NBits
					}
					if s.Obs != nil {
						s.Obs.Emit(obs.Event{Kind: obs.KindSend, Round: int32(r), Node: int32(v), Track: int32(p), A: int64(pOutgoing[v].NBits)})
					}
				}
			}
		}
		// Delivery, using the other party's forwards for this round.
		for _, p := range parties {
			var other chains.Party
			if p == chains.Alice {
				other = chains.Bob
			} else {
				other = chains.Alice
			}
			pSpoiled, pMachines := spoiled[p], machines[p]
			pActions, pOutgoing := actions[p], outgoing[p]
			pOpposite := opposite[p]
			oForwards, oHas := forwards[other], hasForward[other]
			topo := s.topologyInto(scratch[p], p, r, nil)
			var pRecords []roundRecord
			if referee {
				pRecords = records[p][r]
			}
			for v, m := range pMachines {
				if m == nil || r >= pSpoiled[v] || pActions[v] != dynet.Receive {
					continue
				}
				inbox := inboxBuf[:0]
				for _, u32 := range topo.Adj(v) {
					u := int(u32)
					switch {
					case pOpposite[u]:
						if oHas[u] {
							inbox = append(inbox, oForwards[u])
						}
					case r <= pSpoiled[u]:
						if pActions[u] == dynet.Send {
							inbox = append(inbox, pOutgoing[u])
						}
					}
				}
				sortInbox(inbox)
				inboxBuf = inbox
				if referee {
					// The record needs a stable copy; the buffer is reused.
					inbox = inboxes.copyMsgs(inbox)
					pRecords[v].inbox = inbox
				}
				m.Deliver(r, inbox)
			}
		}
	}

	// Alice's claim.
	if m := machines[chains.Alice][s.DecisionNode]; m != nil {
		if out, done := m.Output(); done {
			res.Claim = true
			res.DecisionOutput = out
		}
	} else {
		return nil, fmt.Errorf("twoparty: decision node %d not simulated by Alice", s.DecisionNode)
	}

	if referee {
		refRecords, refMachines := s.referenceRun()
		res.ReferenceMachines = refMachines
		res.ReferenceOutputs = make([]int64, n)
		res.ReferenceDecided = make([]bool, n)
		for v, m := range refMachines {
			res.ReferenceOutputs[v], res.ReferenceDecided[v] = m.Output()
		}
		for _, p := range parties {
			res.LemmaViolations = append(res.LemmaViolations,
				compare(p, s, records[p], refRecords)...)
		}
	}
	if s.Metrics != nil {
		s.Metrics.Counter("reduction_rounds_total").Add(int64(res.Rounds))
		s.Metrics.Counter("reduction_bits_alice_to_bob").Add(int64(res.BitsAliceToBob))
		s.Metrics.Counter("reduction_bits_bob_to_alice").Add(int64(res.BitsBobToAlice))
		s.Metrics.Counter("reduction_spoiled_in_horizon").Add(int64(spoiledInHorizon))
		s.Metrics.Counter("reduction_lemma_violations").Add(int64(len(res.LemmaViolations)))
	}
	return res, nil
}

// compare verifies Lemma 5 empirically: for every round r and node v
// non-spoiled for p in round r, the party's action, payload, and inbox
// match the reference execution.
func compare(p chains.Party, s Setup, got, ref [][]roundRecord) []string {
	var out []string
	spoiled := s.Spoiled[p]
	opposite := map[int]bool{}
	var other chains.Party
	if p == chains.Alice {
		other = chains.Bob
	} else {
		other = chains.Alice
	}
	for _, v := range s.Forward[other] {
		opposite[v] = true
	}
	for r := 1; r <= s.Horizon; r++ {
		for v := 0; v < s.ActualN; v++ {
			if r >= spoiled[v] || opposite[v] {
				continue
			}
			g, w := got[r][v], ref[r][v]
			if g.action != w.action {
				out = append(out, fmt.Sprintf("%v r=%d v=%d: action %v != reference %v", p, r, v, g.action, w.action))
				continue
			}
			if g.action == dynet.Send {
				if g.nbits != w.nbits || !bytes.Equal(g.payload, w.payload) {
					out = append(out, fmt.Sprintf("%v r=%d v=%d: payload mismatch", p, r, v))
				}
				continue
			}
			if len(g.inbox) != len(w.inbox) {
				out = append(out, fmt.Sprintf("%v r=%d v=%d: inbox size %d != reference %d", p, r, v, len(g.inbox), len(w.inbox)))
				continue
			}
			for i := range g.inbox {
				if g.inbox[i].From != w.inbox[i].From ||
					g.inbox[i].NBits != w.inbox[i].NBits ||
					!bytes.Equal(g.inbox[i].Payload, w.inbox[i].Payload) {
					out = append(out, fmt.Sprintf("%v r=%d v=%d: inbox[%d] mismatch", p, r, v, i))
					break
				}
			}
		}
	}
	return out
}
