// Package twoparty implements the paper's reduction harness (Sections 3
// and 6): Alice and Bob solve a DISJOINTNESSCP instance by jointly
// simulating an oracle protocol over a composed dynamic network, exchanging
// only the messages of the special nodes (A_Γ/A_Λ from Alice, B_Γ/B_Λ from
// Bob) and counting every bit.
//
// Each party simulates exactly the nodes that are non-spoiled for it, under
// its own simulated adversary, per the induction of Lemma 5:
//
//   - A node is stepped in round r iff r <= spoiledFrom(node): a node
//     spoiled from round r is stepped one last time in round r, because a
//     node that is non-spoiled in round r-1 may still have to *send* in
//     round r (its state through r-1 is known exactly).
//   - A node is delivered to in round r iff r < spoiledFrom(node): its
//     incoming messages are the round-r messages of the senders among its
//     neighbors under the party's simulated adversary; Lemma 3/4 guarantee
//     each such sender is either the opposite special (whose message was
//     forwarded) or was non-spoiled in round r-1 (so the party computed its
//     message itself).
//
// The optional referee runs the true execution under the reference
// adversary with the same public coins and verifies, round by round, that
// every non-spoiled node's action, outgoing message, and inbox in the
// party simulation are identical to the reference — the empirical content
// of Lemma 5 (experiment E7 in DESIGN.md).
package twoparty

import (
	"bytes"
	"fmt"
	"sort"

	"dyndiam/internal/chains"
	"dyndiam/internal/dynet"
	"dyndiam/internal/graph"
	"dyndiam/internal/rng"
	"dyndiam/internal/subnet"
)

// Setup describes one reduction run. Use FromCFlood or FromConsensus to
// build one from a composition network.
type Setup struct {
	// ActualN is the reference network's node count; node ids are
	// [0, ActualN).
	ActualN int
	// CfgN is the id-space size handed to machines as Config.N (the
	// protocol's public knowledge; for the consensus composition this is
	// the potential 2S, since the true N depends on the answer).
	CfgN int
	// Horizon is the number of rounds to simulate: (q-1)/2.
	Horizon int
	// Topology renders the network under a party's adversary.
	Topology func(p chains.Party, r int, actions []dynet.Action) *graph.Graph
	// Spoiled[party][v] is the first round from whose beginning v is
	// spoiled for the party (subnet.Never if never).
	Spoiled map[chains.Party][]int
	// Forward[party] lists the special nodes whose outgoing messages the
	// party forwards to the other party.
	Forward map[chains.Party][]int
	// Inputs holds the construction-determined node inputs. Entries for
	// nodes spoiled from round 0 (the Υ subnetwork) are known only to
	// the reference execution.
	Inputs []int64
	// DecisionNode is the node Alice monitors (A_Γ for CFLOOD, A_Λ for
	// CONSENSUS): the claim is 1 iff it has output by the horizon.
	DecisionNode int

	Oracle dynet.Protocol
	Extra  map[string]int64
	Seed   uint64
}

// Result reports one reduction run.
type Result struct {
	// Claim is Alice's DISJOINTNESSCP answer: 1 iff the decision node
	// output by the horizon in her simulation.
	Claim bool
	// DecisionOutput is the decision node's output value when Claim.
	DecisionOutput int64
	// BitsAliceToBob / BitsBobToAlice count the payload bits of all
	// forwarded special-node messages.
	BitsAliceToBob int
	BitsBobToAlice int
	// Rounds is the number of simulated rounds (the horizon).
	Rounds int
	// LemmaViolations lists referee findings (empty = Lemma 5 held).
	LemmaViolations []string
	// ReferenceOutputs/Decided capture the reference execution at the
	// horizon, for output-correctness audits.
	ReferenceOutputs []int64
	ReferenceDecided []bool
	// ReferenceMachines exposes the reference machines for protocol-
	// specific audits (e.g. flood.Informed).
	ReferenceMachines []dynet.Machine
}

// FromCFlood builds the Theorem 6 setup: the oracle solves CFLOOD from
// source A_Γ with the token 1.
func FromCFlood(net *subnet.CFloodNet, oracle dynet.Protocol, seed uint64, extra map[string]int64) Setup {
	inputs := make([]int64, net.N)
	inputs[net.Source()] = 1
	return Setup{
		ActualN: net.N,
		CfgN:    net.N,
		Horizon: net.Horizon(),
		Topology: func(p chains.Party, r int, actions []dynet.Action) *graph.Graph {
			return net.Topology(p, r, actions)
		},
		Spoiled: map[chains.Party][]int{
			chains.Alice: net.SpoiledFrom(chains.Alice),
			chains.Bob:   net.SpoiledFrom(chains.Bob),
		},
		Forward: map[chains.Party][]int{
			chains.Alice: net.ForwardNodes(chains.Alice),
			chains.Bob:   net.ForwardNodes(chains.Bob),
		},
		Inputs:       inputs,
		DecisionNode: net.Source(),
		Oracle:       oracle,
		Extra:        extra,
		Seed:         seed,
	}
}

// FromConsensus builds the Theorem 7 setup: the oracle solves CONSENSUS
// over inputs 0 (Λ) / 1 (Υ), knowing only N' (injected into Extra as
// "nprime").
func FromConsensus(net *subnet.ConsensusNet, oracle dynet.Protocol, seed uint64, extra map[string]int64) Setup {
	merged := map[string]int64{"nprime": int64(net.NPrime)}
	for k, v := range extra {
		merged[k] = v
	}
	return Setup{
		ActualN: net.N,
		CfgN:    net.PotentialN,
		Horizon: net.Horizon(),
		Topology: func(p chains.Party, r int, actions []dynet.Action) *graph.Graph {
			return net.Topology(p, r, actions)
		},
		Spoiled: map[chains.Party][]int{
			chains.Alice: net.SpoiledFrom(chains.Alice),
			chains.Bob:   net.SpoiledFrom(chains.Bob),
		},
		Forward: map[chains.Party][]int{
			chains.Alice: net.ForwardNodes(chains.Alice),
			chains.Bob:   net.ForwardNodes(chains.Bob),
		},
		Inputs:       net.Inputs(),
		DecisionNode: net.Lambda.A,
		Oracle:       oracle,
		Extra:        merged,
		Seed:         seed,
	}
}

// newMachine constructs the machine for node v exactly as every simulation
// participant must: same coins, same budget, same Extra.
func (s Setup) newMachine(v int) dynet.Machine {
	root := rng.New(s.Seed)
	return s.Oracle.NewMachine(dynet.Config{
		N:      s.CfgN,
		ID:     v,
		Input:  s.Inputs[v],
		Coins:  root.Split(uint64(v) + 1),
		Budget: dynet.Budget(s.CfgN),
		Extra:  s.Extra,
	})
}

// roundRecord captures one node's observable behavior in one round.
type roundRecord struct {
	action  dynet.Action
	payload []byte
	nbits   int
	inbox   []dynet.Message // delivered messages (receivers only)
}

// referenceRun executes the true network under the reference adversary for
// the horizon, recording every node's behavior per round.
func (s Setup) referenceRun() ([][]roundRecord, []dynet.Machine) {
	n := s.ActualN
	ms := make([]dynet.Machine, n)
	for v := 0; v < n; v++ {
		ms[v] = s.newMachine(v)
	}
	records := make([][]roundRecord, s.Horizon+1) // 1-based rounds
	actions := make([]dynet.Action, n)
	outgoing := make([]dynet.Message, n)
	for r := 1; r <= s.Horizon; r++ {
		records[r] = make([]roundRecord, n)
		for v := 0; v < n; v++ {
			act, msg := ms[v].Step(r)
			actions[v], outgoing[v] = act, msg
			outgoing[v].From = v
			records[r][v].action = act
			if act == dynet.Send {
				records[r][v].payload = append([]byte(nil), msg.Payload...)
				records[r][v].nbits = msg.NBits
			}
		}
		topo := s.Topology(chains.Reference, r, actions)
		for v := 0; v < n; v++ {
			if actions[v] != dynet.Receive {
				continue
			}
			var inbox []dynet.Message
			topo.ForEachNeighbor(v, func(u int) {
				if actions[u] == dynet.Send {
					inbox = append(inbox, outgoing[u])
				}
			})
			sort.Slice(inbox, func(i, j int) bool { return inbox[i].From < inbox[j].From })
			records[r][v].inbox = inbox
			ms[v].Deliver(r, inbox)
		}
	}
	return records, ms
}

// Run performs the full reduction. It advances Alice and Bob in lockstep,
// exchanging forwarded special-node messages after each round's Step phase,
// exactly like the two-party protocol would (each party's forwards come
// from its own simulation, never from the reference execution). With
// referee set, the reference execution is run on the side and every
// non-spoiled node's behavior is compared against it (Lemma 5).
func Run(s Setup, referee bool) (*Result, error) {
	if s.Horizon < 1 {
		return nil, fmt.Errorf("twoparty: horizon %d < 1", s.Horizon)
	}
	n := s.ActualN
	parties := []chains.Party{chains.Alice, chains.Bob}
	spoiled := s.Spoiled
	opposite := map[chains.Party]map[int]bool{
		chains.Alice: {},
		chains.Bob:   {},
	}
	for _, v := range s.Forward[chains.Bob] {
		opposite[chains.Alice][v] = true
	}
	for _, v := range s.Forward[chains.Alice] {
		opposite[chains.Bob][v] = true
	}

	machines := map[chains.Party]map[int]dynet.Machine{}
	for _, p := range parties {
		machines[p] = make(map[int]dynet.Machine)
		for v := 0; v < n; v++ {
			if spoiled[p][v] >= 1 && !opposite[p][v] {
				machines[p][v] = s.newMachine(v)
			}
		}
	}

	res := &Result{Rounds: s.Horizon}
	records := map[chains.Party][][]roundRecord{
		chains.Alice: make([][]roundRecord, s.Horizon+1),
		chains.Bob:   make([][]roundRecord, s.Horizon+1),
	}
	actions := map[chains.Party]map[int]dynet.Action{
		chains.Alice: {}, chains.Bob: {},
	}
	outgoing := map[chains.Party]map[int]dynet.Message{
		chains.Alice: {}, chains.Bob: {},
	}
	// forwards[p][v] is the message special v (owned by p) sent this
	// round, as computed by p.
	for r := 1; r <= s.Horizon; r++ {
		forwards := map[chains.Party]map[int]dynet.Message{
			chains.Alice: {}, chains.Bob: {},
		}
		for _, p := range parties {
			records[p][r] = make([]roundRecord, n)
			for v, m := range machines[p] {
				if r > spoiled[p][v] {
					continue
				}
				act, msg := m.Step(r)
				msg.From = v
				actions[p][v], outgoing[p][v] = act, msg
				records[p][r][v].action = act
				if act == dynet.Send {
					records[p][r][v].payload = append([]byte(nil), msg.Payload...)
					records[p][r][v].nbits = msg.NBits
				}
			}
			for _, v := range s.Forward[p] {
				if r <= spoiled[p][v] && actions[p][v] == dynet.Send {
					forwards[p][v] = outgoing[p][v]
					if p == chains.Alice {
						res.BitsAliceToBob += outgoing[p][v].NBits
					} else {
						res.BitsBobToAlice += outgoing[p][v].NBits
					}
				}
			}
		}
		// Delivery, using the other party's forwards for this round.
		for _, p := range parties {
			var other chains.Party
			if p == chains.Alice {
				other = chains.Bob
			} else {
				other = chains.Alice
			}
			topo := s.Topology(p, r, nil)
			for v, m := range machines[p] {
				if r >= spoiled[p][v] || actions[p][v] != dynet.Receive {
					continue
				}
				var inbox []dynet.Message
				topo.ForEachNeighbor(v, func(u int) {
					switch {
					case opposite[p][u]:
						if msg, ok := forwards[other][u]; ok {
							inbox = append(inbox, msg)
						}
					case r <= spoiled[p][u]:
						if actions[p][u] == dynet.Send {
							inbox = append(inbox, outgoing[p][u])
						}
					}
				})
				sort.Slice(inbox, func(i, j int) bool { return inbox[i].From < inbox[j].From })
				records[p][r][v].inbox = inbox
				m.Deliver(r, inbox)
			}
		}
	}

	// Alice's claim.
	if m, ok := machines[chains.Alice][s.DecisionNode]; ok {
		if out, done := m.Output(); done {
			res.Claim = true
			res.DecisionOutput = out
		}
	} else {
		return nil, fmt.Errorf("twoparty: decision node %d not simulated by Alice", s.DecisionNode)
	}

	if referee {
		refRecords, refMachines := s.referenceRun()
		res.ReferenceMachines = refMachines
		res.ReferenceOutputs = make([]int64, n)
		res.ReferenceDecided = make([]bool, n)
		for v, m := range refMachines {
			res.ReferenceOutputs[v], res.ReferenceDecided[v] = m.Output()
		}
		for _, p := range parties {
			res.LemmaViolations = append(res.LemmaViolations,
				compare(p, s, records[p], refRecords)...)
		}
	}
	return res, nil
}

// compare verifies Lemma 5 empirically: for every round r and node v
// non-spoiled for p in round r, the party's action, payload, and inbox
// match the reference execution.
func compare(p chains.Party, s Setup, got, ref [][]roundRecord) []string {
	var out []string
	spoiled := s.Spoiled[p]
	opposite := map[int]bool{}
	var other chains.Party
	if p == chains.Alice {
		other = chains.Bob
	} else {
		other = chains.Alice
	}
	for _, v := range s.Forward[other] {
		opposite[v] = true
	}
	for r := 1; r <= s.Horizon; r++ {
		for v := 0; v < s.ActualN; v++ {
			if r >= spoiled[v] || opposite[v] {
				continue
			}
			g, w := got[r][v], ref[r][v]
			if g.action != w.action {
				out = append(out, fmt.Sprintf("%v r=%d v=%d: action %v != reference %v", p, r, v, g.action, w.action))
				continue
			}
			if g.action == dynet.Send {
				if g.nbits != w.nbits || !bytes.Equal(g.payload, w.payload) {
					out = append(out, fmt.Sprintf("%v r=%d v=%d: payload mismatch", p, r, v))
				}
				continue
			}
			if len(g.inbox) != len(w.inbox) {
				out = append(out, fmt.Sprintf("%v r=%d v=%d: inbox size %d != reference %d", p, r, v, len(g.inbox), len(w.inbox)))
				continue
			}
			for i := range g.inbox {
				if g.inbox[i].From != w.inbox[i].From ||
					g.inbox[i].NBits != w.inbox[i].NBits ||
					!bytes.Equal(g.inbox[i].Payload, w.inbox[i].Payload) {
					out = append(out, fmt.Sprintf("%v r=%d v=%d: inbox[%d] mismatch", p, r, v, i))
					break
				}
			}
		}
	}
	return out
}
