package twoparty

import (
	"testing"

	"dyndiam/internal/disjcp"
	"dyndiam/internal/dynet"
	"dyndiam/internal/protocols/consensus"
	"dyndiam/internal/protocols/flood"
	"dyndiam/internal/protocols/leader"
	"dyndiam/internal/rng"
	"dyndiam/internal/subnet"
)

// TestLemma5CFloodReferee is experiment E7: across random instances (both
// answers) and seeds, Alice's and Bob's simulations of the CFLOOD oracle
// must match the reference execution exactly on every non-spoiled node.
func TestLemma5CFloodReferee(t *testing.T) {
	src := rng.New(42)
	for trial := 0; trial < 12; trial++ {
		q := []int{9, 13, 17}[trial%3]
		var in disjcp.Instance
		if trial%2 == 0 {
			in = disjcp.RandomZero(2, q, 1+trial%2, src)
		} else {
			in = disjcp.Random(2, q, src)
		}
		net, err := subnet.NewCFlood(in)
		if err != nil {
			t.Fatal(err)
		}
		setup := FromCFlood(net, flood.CFlood{}, uint64(trial), map[string]int64{
			flood.ExtraD: 10,
		})
		res, err := Run(setup, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res.LemmaViolations {
			t.Errorf("trial %d (q=%d, x=%v, y=%v): %s", trial, q, in.X, in.Y, v)
		}
		if res.BitsAliceToBob == 0 {
			t.Errorf("trial %d: Alice forwarded no bits (A_Γ floods every round)", trial)
		}
		budget := dynet.Budget(net.N)
		if max := res.Rounds * 2 * budget; res.BitsAliceToBob > max || res.BitsBobToAlice > max {
			t.Errorf("trial %d: forwarded bits (%d, %d) exceed the O(s log N) cap %d",
				trial, res.BitsAliceToBob, res.BitsBobToAlice, max)
		}
	}
}

// TestLemma5WithGossipOracle re-runs the referee with a very different
// oracle (the Section 7 leader-election machine, with its coin-driven
// send/receive pattern): Lemma 5 is protocol-agnostic.
func TestLemma5WithGossipOracle(t *testing.T) {
	src := rng.New(7)
	for trial := 0; trial < 6; trial++ {
		in := disjcp.Random(2, 13, src)
		net, err := subnet.NewCFlood(in)
		if err != nil {
			t.Fatal(err)
		}
		setup := FromCFlood(net, leader.Protocol{}, uint64(100+trial), map[string]int64{
			leader.ExtraK: 8,
		})
		res, err := Run(setup, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res.LemmaViolations {
			t.Errorf("trial %d (x=%v, y=%v): %s", trial, in.X, in.Y, v)
		}
	}
}

// TestLemma5ConsensusReferee runs the referee over the Theorem 7
// composition, where Alice and Bob cannot even agree on the node count.
func TestLemma5ConsensusReferee(t *testing.T) {
	src := rng.New(9)
	for trial := 0; trial < 8; trial++ {
		var in disjcp.Instance
		if trial%2 == 0 {
			in = disjcp.RandomZero(2, 13, 1, src)
		} else {
			in = disjcp.Random(2, 13, src)
		}
		net, err := subnet.NewConsensus(in)
		if err != nil {
			t.Fatal(err)
		}
		setup := FromConsensus(net, consensus.KnownD{}, uint64(trial), map[string]int64{
			consensus.ExtraD: 10,
		})
		res, err := Run(setup, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res.LemmaViolations {
			t.Errorf("trial %d (x=%v, y=%v, disj=%d): %s", trial, in.X, in.Y, in.Eval(), v)
		}
	}
}

// TestTheorem6Dichotomy is experiment E1's core: a fast CFLOOD oracle (one
// that assumes a small diameter) lets Alice decide 1-instances within the
// horizon but *errs* on 0-instances (it confirms while the far line node is
// uninformed); a safe oracle (pessimistic D = N-1) is correct everywhere
// but never terminates within the horizon. No oracle is both fast and
// correct — that is Theorem 6.
func TestTheorem6Dichotomy(t *testing.T) {
	src := rng.New(77)
	const q, n = 25, 2 // horizon 12 > fast oracle's 10 rounds

	for _, zero := range []bool{false, true} {
		var in disjcp.Instance
		if zero {
			in = disjcp.RandomZero(n, q, 1, src)
		} else {
			in = disjcp.RandomOne(n, q, src)
		}
		net, err := subnet.NewCFlood(in)
		if err != nil {
			t.Fatal(err)
		}

		// Fast oracle: assumes diameter 10 (correct iff DISJ = 1).
		fast := FromCFlood(net, flood.CFlood{}, 3, map[string]int64{flood.ExtraD: 10})
		fres, err := Run(fast, true)
		if err != nil {
			t.Fatal(err)
		}
		if !fres.Claim {
			t.Errorf("zero=%v: fast oracle did not terminate within horizon %d", zero, fres.Rounds)
		}
		// Audit the reference execution's CFLOOD correctness.
		uninformed := 0
		for _, m := range fres.ReferenceMachines {
			if !flood.Informed(m) {
				uninformed++
			}
		}
		if zero {
			if uninformed == 0 {
				t.Error("0-instance: fast oracle confirmed with everyone informed — the line must be unreachable")
			}
			// The fast oracle's claim is wrong on 0-instances.
			if fres.Claim == (in.Eval() == 1) {
				t.Error("0-instance: fast oracle's claim should be wrong")
			}
		} else {
			if uninformed != 0 {
				t.Errorf("1-instance: %d nodes uninformed at confirmation on an O(1)-diameter network", uninformed)
			}
			if !fres.Claim {
				t.Error("1-instance: fast oracle should yield claim 1")
			}
		}

		// Safe oracle: pessimistic D = N-1; never confirms within the
		// horizon (N-1 >> (q-1)/2), so Alice always claims 0.
		safe := FromCFlood(net, flood.CFlood{}, 3, nil)
		sres, err := Run(safe, false)
		if err != nil {
			t.Fatal(err)
		}
		if sres.Claim {
			t.Errorf("zero=%v: safe oracle terminated within the horizon on an N=%d network", zero, net.N)
		}
	}
}

// TestTheorem7AgreementViolation is experiment E2's core: a consensus
// oracle that assumes a small diameter (legitimate if DISJ = 1, where the
// network is the O(1)-diameter Λ alone) terminates within the horizon; on
// 0-instances the Λ side decides 0 while the Υ side decides 1 — an
// agreement violation, because neither side can learn of the other within
// the horizon. With only the 1/3-accurate N', no protocol can be both fast
// and correct — that is Theorem 7.
func TestTheorem7AgreementViolation(t *testing.T) {
	src := rng.New(5)
	const q, n = 401, 1 // horizon 200

	oneIn := disjcp.RandomOne(n, q, src)
	zeroIn := disjcp.RandomZero(n, q, 1, src)

	for _, tc := range []struct {
		in   disjcp.Instance
		zero bool
	}{{oneIn, false}, {zeroIn, true}} {
		net, err := subnet.NewConsensus(tc.in)
		if err != nil {
			t.Fatal(err)
		}
		// Fast oracle: gossip for 150 rounds assuming diameter ~10,
		// then decide. Legitimate on the Λ-only network.
		setup := FromConsensus(net, consensus.KnownD{}, 11, map[string]int64{
			consensus.ExtraRounds: 150,
		})
		res, err := Run(setup, true)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Claim {
			t.Fatalf("zero=%v: oracle did not decide within horizon", tc.zero)
		}
		if !tc.zero {
			// 1-instance: all nodes must agree (on the max-id Λ
			// node's input, which is 0 here).
			for v, out := range res.ReferenceOutputs {
				if !res.ReferenceDecided[v] {
					t.Fatalf("1-instance: node %d undecided", v)
				}
				if out != res.ReferenceOutputs[0] {
					t.Errorf("1-instance: node %d decided %d, node 0 decided %d",
						v, out, res.ReferenceOutputs[0])
				}
			}
			continue
		}
		// 0-instance: both sides decided, and they disagree.
		s := net.Lambda.Size()
		lambdaDecision := res.ReferenceOutputs[net.Lambda.A]
		upsilonDecision := res.ReferenceOutputs[s] // A_Υ
		if !res.ReferenceDecided[net.Lambda.A] || !res.ReferenceDecided[s] {
			t.Fatal("0-instance: sides did not decide within horizon")
		}
		if lambdaDecision == upsilonDecision {
			t.Errorf("0-instance: both sides decided %d — expected an agreement violation",
				lambdaDecision)
		}
		if lambdaDecision != 0 || upsilonDecision != 1 {
			t.Errorf("0-instance: decisions (%d, %d), want (0, 1) (each side its own unanimous input)",
				lambdaDecision, upsilonDecision)
		}
	}
}

// TestBitsScaleWithHorizonTimesLogN verifies the communication accounting
// that links time complexity to DISJOINTNESSCP: the forwarded bits grow
// linearly in the simulated rounds with an O(log N) factor.
func TestBitsScaleWithHorizonTimesLogN(t *testing.T) {
	src := rng.New(13)
	var prevBits int
	for _, q := range []int{17, 33, 65} {
		in := disjcp.RandomOne(2, q, src)
		net, err := subnet.NewCFlood(in)
		if err != nil {
			t.Fatal(err)
		}
		setup := FromCFlood(net, flood.CFlood{}, 5, map[string]int64{flood.ExtraD: 10})
		res, err := Run(setup, false)
		if err != nil {
			t.Fatal(err)
		}
		total := res.BitsAliceToBob + res.BitsBobToAlice
		if total <= prevBits {
			t.Errorf("q=%d: total bits %d did not grow with the horizon (prev %d)", q, total, prevBits)
		}
		perRound := float64(total) / float64(res.Rounds)
		if perRound > float64(4*dynet.Budget(net.N)) {
			t.Errorf("q=%d: %.1f bits/round exceeds 4 specials x budget", q, perRound)
		}
		prevBits = total
	}
}

func TestRunRejectsZeroHorizon(t *testing.T) {
	if _, err := Run(Setup{Horizon: 0}, false); err == nil {
		t.Fatal("Run accepted horizon 0")
	}
}

func BenchmarkCFloodReduction(b *testing.B) {
	src := rng.New(3)
	in := disjcp.RandomZero(2, 17, 1, src)
	net, err := subnet.NewCFlood(in)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		setup := FromCFlood(net, flood.CFlood{}, uint64(i), map[string]int64{flood.ExtraD: 10})
		if _, err := Run(setup, false); err != nil {
			b.Fatal(err)
		}
	}
}
