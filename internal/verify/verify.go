// Package verify bundles problem-specification auditors: given an
// execution's inputs and outputs, they check the defining properties of
// each problem from the paper (CFLOOD output correctness, consensus
// termination/agreement/validity, leader-election unanimity and
// legitimacy). The auditors are pure functions over results, so tests,
// the harness, and downstream users can share one source of truth for
// "did the protocol actually solve the problem".
package verify

import (
	"fmt"

	"dyndiam/internal/dynet"
	"dyndiam/internal/protocols/flood"
)

// Termination checks that every node listed in who (nil = all) decided.
// The audit is deterministic: nodes are scanned in ascending id order (for
// nil who, explicitly by index), so the error always names the lowest
// undecided node regardless of how Result is stored.
func Termination(res *dynet.Result, who []int) error {
	if who == nil {
		for v := 0; v < len(res.Decided); v++ {
			if !res.Decided[v] {
				return fmt.Errorf("verify: node %d did not decide", v)
			}
		}
		return nil
	}
	for _, v := range who {
		if !res.Decided[v] {
			return fmt.Errorf("verify: node %d did not decide", v)
		}
	}
	return nil
}

// Agreement checks that all decided nodes output the same value and
// returns it. At least one node must have decided.
//
// The reference value is pinned to the lowest-id decided node and the
// scan ascends from there, so both the returned value and the node named
// in a mismatch error are deterministic functions of the execution — the
// audit itself must never inject iteration-order nondeterminism into
// reports that experiments and tests compare across runs.
func Agreement(res *dynet.Result) (int64, error) {
	ref := -1
	for v := 0; v < len(res.Decided); v++ {
		if res.Decided[v] {
			ref = v
			break
		}
	}
	if ref == -1 {
		return 0, fmt.Errorf("verify: no node decided")
	}
	first := res.Outputs[ref]
	for v := ref + 1; v < len(res.Decided); v++ {
		if res.Decided[v] && res.Outputs[v] != first {
			return 0, fmt.Errorf("verify: node %d decided %d, but node %d decided %d",
				v, res.Outputs[v], ref, first)
		}
	}
	return first, nil
}

// Validity checks that value was some node's input.
func Validity(inputs []int64, value int64) error {
	for _, in := range inputs {
		if in == value {
			return nil
		}
	}
	return fmt.Errorf("verify: decided value %d was nobody's input", value)
}

// Consensus checks termination + agreement + validity in one call.
func Consensus(inputs []int64, res *dynet.Result) error {
	if err := Termination(res, nil); err != nil {
		return err
	}
	v, err := Agreement(res)
	if err != nil {
		return err
	}
	return Validity(inputs, v)
}

// CFlood checks the CFLOOD specification: the source decided, and at the
// moment of audit every machine holds the token ("by the time V outputs,
// the token has been received by all nodes").
func CFlood(ms []dynet.Machine, res *dynet.Result, source int) error {
	if !res.Decided[source] {
		return fmt.Errorf("verify: source %d did not confirm", source)
	}
	for v, m := range ms {
		if !flood.Informed(m) {
			return fmt.Errorf("verify: node %d uninformed at confirmation", v)
		}
	}
	return nil
}

// Leader checks leader election: termination, unanimity, and that the
// elected id is a real node. wantMax additionally requires the canonical
// winner (the maximum id), which holds in failure-free runs of the
// Section 7 protocol.
func Leader(res *dynet.Result, n int, wantMax bool) error {
	if err := Termination(res, nil); err != nil {
		return err
	}
	id, err := Agreement(res)
	if err != nil {
		return err
	}
	if id < 0 || id >= int64(n) {
		return fmt.Errorf("verify: elected id %d outside [0, %d)", id, n)
	}
	if wantMax && id != int64(n-1) {
		return fmt.Errorf("verify: elected %d, want the maximum id %d", id, n-1)
	}
	return nil
}

// MaxFunction checks the MAX problem: all nodes decided the true maximum.
func MaxFunction(inputs []int64, res *dynet.Result) error {
	if err := Termination(res, nil); err != nil {
		return err
	}
	var want int64
	for i, in := range inputs {
		if i == 0 || in > want {
			want = in
		}
	}
	got, err := Agreement(res)
	if err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("verify: MAX decided %d, true maximum %d", got, want)
	}
	return nil
}

// EstimateWithin checks that every node's output is within rel of target.
func EstimateWithin(res *dynet.Result, target int, rel float64) error {
	if err := Termination(res, nil); err != nil {
		return err
	}
	lo := float64(target) * (1 - rel)
	hi := float64(target) * (1 + rel)
	for v, out := range res.Outputs {
		if float64(out) < lo || float64(out) > hi {
			return fmt.Errorf("verify: node %d estimated %d, outside %.1f%% of %d",
				v, out, rel*100, target)
		}
	}
	return nil
}
