package verify

import (
	"strings"
	"testing"

	"dyndiam/internal/dynet"
)

func res(outputs []int64, decided []bool) *dynet.Result {
	return &dynet.Result{Outputs: outputs, Decided: decided}
}

func TestTermination(t *testing.T) {
	r := res([]int64{1, 1, 0}, []bool{true, true, false})
	if err := Termination(r, nil); err == nil {
		t.Error("undetected non-termination")
	}
	if err := Termination(r, []int{0, 1}); err != nil {
		t.Errorf("subset termination failed: %v", err)
	}
	if err := Termination(r, []int{2}); err == nil {
		t.Error("node 2 reported terminated")
	}
}

func TestAgreement(t *testing.T) {
	if _, err := Agreement(res([]int64{5, 5}, []bool{true, true})); err != nil {
		t.Errorf("agreement rejected: %v", err)
	}
	if _, err := Agreement(res([]int64{5, 6}, []bool{true, true})); err == nil {
		t.Error("disagreement accepted")
	}
	// Undecided nodes are ignored.
	v, err := Agreement(res([]int64{5, 99}, []bool{true, false}))
	if err != nil || v != 5 {
		t.Errorf("got (%d, %v)", v, err)
	}
	if _, err := Agreement(res([]int64{0}, []bool{false})); err == nil {
		t.Error("no-decision accepted")
	}
}

// TestAgreementDeterministic pins the audit's determinism contract: the
// reference value is the lowest-id decided node's output, and a mismatch
// error names the lowest-id disagreeing node together with the reference
// node. Which node an auditor reports must never vary run to run.
func TestAgreementDeterministic(t *testing.T) {
	// Node 0 undecided: the reference must be node 1, not node 0.
	v, err := Agreement(res([]int64{99, 7, 7}, []bool{false, true, true}))
	if err != nil || v != 7 {
		t.Errorf("reference not lowest decided node: got (%d, %v), want (7, nil)", v, err)
	}
	// Nodes 2 and 3 both disagree with node 1; node 2 must be named.
	_, err = Agreement(res([]int64{0, 7, 8, 9}, []bool{false, true, true, true}))
	if err == nil {
		t.Fatal("disagreement accepted")
	}
	want := "verify: node 2 decided 8, but node 1 decided 7"
	if err.Error() != want {
		t.Errorf("mismatch report = %q, want %q (report must be deterministic)", err.Error(), want)
	}
}

// TestTerminationDeterministic: with several undecided nodes the error
// names the lowest id.
func TestTerminationDeterministic(t *testing.T) {
	r := res([]int64{0, 0, 0, 0}, []bool{true, false, true, false})
	err := Termination(r, nil)
	if err == nil {
		t.Fatal("non-termination accepted")
	}
	if want := "verify: node 1 did not decide"; err.Error() != want {
		t.Errorf("report = %q, want %q", err.Error(), want)
	}
}

func TestValidity(t *testing.T) {
	if err := Validity([]int64{0, 1, 0}, 1); err != nil {
		t.Errorf("valid value rejected: %v", err)
	}
	if err := Validity([]int64{0, 0}, 1); err == nil {
		t.Error("invalid value accepted")
	}
}

func TestConsensusComposite(t *testing.T) {
	inputs := []int64{0, 1}
	good := res([]int64{1, 1}, []bool{true, true})
	if err := Consensus(inputs, good); err != nil {
		t.Errorf("good consensus rejected: %v", err)
	}
	bad := res([]int64{2, 2}, []bool{true, true})
	if err := Consensus(inputs, bad); err == nil || !strings.Contains(err.Error(), "nobody") {
		t.Errorf("validity violation missed: %v", err)
	}
}

func TestLeader(t *testing.T) {
	good := res([]int64{3, 3, 3, 3}, []bool{true, true, true, true})
	if err := Leader(good, 4, true); err != nil {
		t.Errorf("good election rejected: %v", err)
	}
	if err := Leader(good, 4, false); err != nil {
		t.Errorf("non-max check rejected: %v", err)
	}
	notMax := res([]int64{2, 2, 2, 2}, []bool{true, true, true, true})
	if err := Leader(notMax, 4, true); err == nil {
		t.Error("non-max winner accepted with wantMax")
	}
	if err := Leader(notMax, 4, false); err != nil {
		t.Errorf("legitimate non-max winner rejected: %v", err)
	}
	outOfRange := res([]int64{9, 9}, []bool{true, true})
	if err := Leader(outOfRange, 4, false); err == nil {
		t.Error("phantom leader accepted")
	}
}

func TestMaxFunction(t *testing.T) {
	inputs := []int64{3, 9, 1}
	good := res([]int64{9, 9, 9}, []bool{true, true, true})
	if err := MaxFunction(inputs, good); err != nil {
		t.Errorf("good MAX rejected: %v", err)
	}
	bad := res([]int64{3, 3, 3}, []bool{true, true, true})
	if err := MaxFunction(inputs, bad); err == nil {
		t.Error("wrong MAX accepted")
	}
}

func TestEstimateWithin(t *testing.T) {
	good := res([]int64{90, 110}, []bool{true, true})
	if err := EstimateWithin(good, 100, 0.15); err != nil {
		t.Errorf("good estimates rejected: %v", err)
	}
	if err := EstimateWithin(good, 100, 0.05); err == nil {
		t.Error("out-of-band estimate accepted")
	}
}
