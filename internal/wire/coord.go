package wire

import (
	"errors"
	"fmt"
	"net"
	"time"

	"dyndiam/internal/dynet"
	"dyndiam/internal/faults"
	"dyndiam/internal/obs"
	"dyndiam/internal/rng"
)

// Config configures a coordinator run. Zero-value timeouts pick defaults
// suitable for loopback clusters.
type Config struct {
	Spec RunSpec
	// Adv overrides the spec-built adversary (tests inject misbehaving
	// adversaries this way). Nil builds from the spec.
	Adv dynet.Adversary
	// Listener accepts node connections. When the spec injects faults and
	// the listener is not already a *FaultListener, Run wraps it — the
	// socket-layer injection is part of the execution semantics, not an
	// optional accessory.
	Listener net.Listener
	// Trace, Obs, Metrics mirror the Engine fields of the same names and
	// receive byte-identical content under the equivalence guarantee.
	Trace   *dynet.Trace
	Obs     obs.Sink
	Metrics *obs.Registry
	// Transport receives the wire_* counters: retries, deadline hits,
	// reconnects, CRC rejects, injected faults, folded node stats. Kept
	// separate from Metrics so equivalence comparisons stay clean.
	Transport *obs.Registry
	// RoundTimeout is the base per-attempt deadline for a round barrier
	// (default 2s).
	RoundTimeout time.Duration
	// MaxRetries bounds re-pokes per barrier (default 8).
	MaxRetries int
	// RetryBase scales the exponential backoff and its deterministic
	// jitter (default 25ms).
	RetryBase time.Duration
}

// Run drives one distributed execution to completion and returns the
// engine-equivalent Result. It mirrors dynet.Engine.Run phase for phase;
// on model violations (budget, topology size, connectivity) it aborts
// the cluster and returns the byte-identical engine error.
func Run(cfg Config) (*dynet.Result, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Listener == nil {
		return nil, errors.New("wire: coordinator needs a listener")
	}
	adv := cfg.Adv
	if adv == nil {
		a, err := cfg.Spec.BuildAdversary()
		if err != nil {
			return nil, err
		}
		adv = a
	}
	ln := cfg.Listener
	plan, err := faults.NewPlan(cfg.Spec.Fault)
	if err != nil {
		return nil, err
	}
	if plan.Enabled() {
		if _, ok := ln.(*FaultListener); !ok {
			fl, err := NewFaultListener(ln, cfg.Spec.Fault, cfg.Transport)
			if err != nil {
				return nil, err
			}
			ln = fl
		}
	}
	co := newCoordinator(cfg, adv, ln, plan)
	defer co.close()
	return co.run()
}

const (
	phaseIdle = iota
	phaseActs
	phaseStatus
	phaseStats
)

// inFrame is one frame (or read error) from a node's reader goroutine.
type inFrame struct {
	node, gen int
	f         Frame
	err       error
}

// joined is a handshake completion from the accept path.
type joined struct {
	conn     net.Conn
	id       int
	lastDone int
}

type link struct {
	conn      net.Conn
	connected bool
	gen       int
	everSeen  bool
}

type coordinator struct {
	cfg       Config
	spec      RunSpec
	n, budget int
	termNode  int
	adv       dynet.Adversary
	ln        net.Listener
	observing bool

	frames chan inFrame
	conns  chan joined
	quit   chan struct{}

	links     []link
	joinReady []bool

	fr  *dynet.FaultRunner
	jit *rng.Source

	actions     []dynet.Action
	outgoing    []dynet.Message
	inboxes     [][]dynet.Message
	dist, queue []int32

	// outputs and statusDec track each node's last reported (output,
	// decided); decided tracks Decide-event emission, mirroring the
	// engine's observing bookkeeping.
	outputs   []int64
	statusDec []bool
	decided   []bool

	phase    int
	round    int
	curActs  []bool
	curStats []bool
	curDown  []bool
	curInbox [][]dynet.Message
	statsGot []bool

	// Per-finalized-round log for crash-rejoin replay: the down mask and
	// every node's post-fault inbox.
	logDown  [][]bool
	logInbox [][][]dynet.Message

	maxRetries              int
	roundTimeout, retryBase time.Duration

	cRetries, cDeadlineHits, cReconnects, cCRC *obs.Counter
	sendersHist, bitsHist                      *obs.Histogram
}

func newCoordinator(cfg Config, adv dynet.Adversary, ln net.Listener, plan *faults.Plan) *coordinator {
	n := cfg.Spec.N
	termNode, _ := cfg.Spec.TermNode()
	co := &coordinator{
		cfg:       cfg,
		spec:      cfg.Spec,
		n:         n,
		budget:    dynet.Budget(n),
		termNode:  termNode,
		adv:       adv,
		ln:        ln,
		observing: cfg.Obs != nil,

		frames: make(chan inFrame, 8*n+16),
		conns:  make(chan joined, 2*n+4),
		quit:   make(chan struct{}),

		links:     make([]link, n),
		joinReady: make([]bool, n),

		fr:  dynet.NewFaultRunner(plan, cfg.Obs, cfg.Metrics, n),
		jit: rng.New(cfg.Spec.Seed).Split('w', 'i', 'r', 'e'),

		actions:  make([]dynet.Action, n),
		outgoing: make([]dynet.Message, n),
		inboxes:  make([][]dynet.Message, n),

		outputs:   make([]int64, n),
		statusDec: make([]bool, n),
		decided:   make([]bool, n),

		curActs:  make([]bool, n),
		curStats: make([]bool, n),
		curInbox: make([][]dynet.Message, n),
		statsGot: make([]bool, n),

		maxRetries:   cfg.MaxRetries,
		roundTimeout: cfg.RoundTimeout,
		retryBase:    cfg.RetryBase,

		cRetries:      cfg.Transport.Counter("wire_retries_total"),
		cDeadlineHits: cfg.Transport.Counter("wire_deadline_hits_total"),
		cReconnects:   cfg.Transport.Counter("wire_reconnects_total"),
		cCRC:          cfg.Transport.Counter("wire_coord_crc_rejects_total"),

		sendersHist: cfg.Metrics.Histogram("engine_round_senders", dynet.RoundHistBounds),
		bitsHist:    cfg.Metrics.Histogram("engine_round_bits", dynet.RoundHistBounds),
	}
	if co.maxRetries == 0 {
		co.maxRetries = 8
	}
	if co.roundTimeout == 0 {
		co.roundTimeout = 2 * time.Second
	}
	if co.retryBase == 0 {
		co.retryBase = 25 * time.Millisecond
	}
	if cfg.Spec.CheckConnectivity {
		co.dist = make([]int32, n)
		co.queue = make([]int32, n)
	}
	return co
}

func (co *coordinator) close() {
	close(co.quit)
	co.ln.Close()
	for v := range co.links {
		if co.links[v].conn != nil {
			co.links[v].conn.Close()
		}
	}
}

// run is the engine twin: same phases, same event order, same errors.
func (co *coordinator) run() (*dynet.Result, error) {
	go co.acceptLoop()
	if err := co.waitAllJoined(); err != nil {
		return nil, co.fail(err)
	}
	for v := 0; v < co.n; v++ {
		co.decided[v] = co.statusDec[v]
	}

	maxRounds := co.spec.MaxRounds
	res := &dynet.Result{Rounds: maxRounds}
	for r := 1; r <= maxRounds; r++ {
		co.round = r
		if co.observing {
			co.cfg.Obs.Emit(obs.Event{Kind: obs.KindRoundStart, Round: int32(r)})
		}
		co.curDown = nil
		if co.fr != nil {
			co.curDown = co.fr.BeginRound(r)
		}

		// Phase 1: STEP fan-out and ACT fan-in. Down nodes are frozen by
		// the socket wrapper (their Step frames are swallowed, the crash
		// transition hard-closes the connection); the coordinator commits
		// a silent Receive for them, as the engine's step does.
		co.phase = phaseActs
		for v := 0; v < co.n; v++ {
			co.curActs[v] = false
			co.curStats[v] = false
			if co.downNow(v) {
				co.actions[v], co.outgoing[v] = dynet.Receive, dynet.Message{}
				co.curActs[v] = true
				co.curStats[v] = true
			}
		}
		step := Frame{Type: FrameStep, Round: int32(r)}
		for v := 0; v < co.n; v++ {
			if co.links[v].connected {
				co.writeTo(v, &step)
			}
		}
		if err := co.await(r, co.allActs, co.pokeActs, "send/receive commitments"); err != nil {
			return nil, co.fail(err)
		}

		// Budget scan, ascending: CONGEST enforced on the NBits that came
		// off the socket, with the engine's exact error.
		roundSenders, roundBits := 0, 0
		for v := 0; v < co.n; v++ {
			if co.actions[v] == dynet.Send {
				if co.outgoing[v].NBits > co.budget {
					return nil, co.fail(dynet.BudgetError(v, r, co.outgoing[v].NBits, co.budget))
				}
				roundSenders++
				roundBits += co.outgoing[v].NBits
				if co.observing {
					co.cfg.Obs.Emit(obs.Event{Kind: obs.KindSend, Round: int32(r), Node: int32(v), A: int64(co.outgoing[v].NBits)})
				}
			}
		}
		res.Messages += roundSenders
		res.Bits += roundBits
		co.sendersHist.Observe(int64(roundSenders))
		co.bitsHist.Observe(int64(roundBits))

		// Phase 2: the adversary fixes the topology knowing the actions.
		g := co.adv.Topology(r, co.actions)
		if g == nil || g.N() != co.n {
			return nil, co.fail(dynet.TopologySizeError(g, co.n))
		}
		if co.spec.CheckConnectivity && !g.ConnectedInto(co.dist, co.queue) {
			return nil, co.fail(dynet.DisconnectedTopologyError(r))
		}
		if co.fr != nil && co.fr.HasEdgeFaults() {
			g = co.fr.Perturb(r, g)
		}

		// Phase 3: inbox accounting. The coordinator assembles the same
		// post-fault inboxes the engine would (fault events and counters
		// included) — for the replay log and redelivery — while the live
		// relays below carry the originals and take their faults on the
		// wire. Plan purity keeps the two in exact agreement.
		if co.fr != nil && co.fr.HasDeliveryOrNodeFaults() {
			co.fr.Collect(r, g, co.actions, co.outgoing, co.inboxes)
		} else {
			dynet.CollectInboxes(g, co.actions, co.outgoing, co.inboxes)
		}
		co.snapshotInboxes()

		// RELAY + DELIVER fan-out, receivers ascending, senders ascending
		// within each receiver — the engine's collect order.
		co.phase = phaseStatus
		for v := 0; v < co.n; v++ {
			if co.downNow(v) || !co.links[v].connected {
				continue
			}
			if co.actions[v] == dynet.Receive {
				for _, u := range g.Adj(v) {
					if co.actions[u] != dynet.Send {
						continue
					}
					relay := Frame{
						Type: FrameRelay, Round: int32(r),
						From: u, To: int32(v),
						NBits:   int32(co.outgoing[u].NBits),
						Payload: co.outgoing[u].Payload,
					}
					if !co.writeTo(v, &relay) {
						break
					}
				}
			}
			co.writeTo(v, &Frame{Type: FrameDeliver, Round: int32(r)})
		}
		if err := co.await(r, co.allStats, co.pokeStatus, "round statuses"); err != nil {
			return nil, co.fail(err)
		}

		if co.cfg.Trace != nil {
			co.cfg.Trace.Record(r, g, co.actions, co.outgoing)
		}
		for v := 0; v < co.n; v++ {
			if co.statusDec[v] && !co.decided[v] {
				co.decided[v] = true
				if co.observing {
					co.cfg.Obs.Emit(obs.Event{Kind: obs.KindDecide, Round: int32(r), Node: int32(v), A: co.outputs[v]})
				}
			}
		}
		if co.observing {
			co.cfg.Obs.Emit(obs.Event{Kind: obs.KindRoundEnd, Round: int32(r), A: int64(roundSenders), B: int64(roundBits)})
		}

		co.finalizeRound()
		co.phase = phaseIdle
		if co.terminated() {
			res.Rounds = r
			res.Done = true
			break
		}
	}

	res.Outputs = append([]int64(nil), co.outputs...)
	res.Decided = append([]bool(nil), co.statusDec...)
	if !res.Done && maxRounds < 1 {
		res.Done = co.terminated()
	}
	if co.cfg.Metrics != nil {
		co.cfg.Metrics.Counter("engine_rounds_total").Add(int64(res.Rounds))
		co.cfg.Metrics.Counter("engine_messages_total").Add(int64(res.Messages))
		co.cfg.Metrics.Counter("engine_bits_total").Add(int64(res.Bits))
	}
	co.finish()
	return res, nil
}

func (co *coordinator) downNow(v int) bool { return co.curDown != nil && co.curDown[v] }

func (co *coordinator) terminated() bool {
	if co.termNode >= 0 {
		return co.statusDec[co.termNode]
	}
	for _, d := range co.statusDec {
		if !d {
			return false
		}
	}
	return true
}

// finalizeRound snapshots the round into the replay log.
func (co *coordinator) finalizeRound() {
	var down []bool
	if co.curDown != nil {
		down = append([]bool(nil), co.curDown...)
	}
	co.logDown = append(co.logDown, down)
	inboxes := make([][]dynet.Message, co.n)
	copy(inboxes, co.curInbox)
	co.logInbox = append(co.logInbox, inboxes)
}

// snapshotInboxes deep-copies the post-fault inboxes: the engine reuses
// its inbox arenas every round, but the replay log and mid-round
// redelivery need round-r's contents to survive round r+1.
func (co *coordinator) snapshotInboxes() {
	for v := 0; v < co.n; v++ {
		src := co.inboxes[v]
		if len(src) == 0 {
			co.curInbox[v] = nil
			continue
		}
		dst := make([]dynet.Message, len(src))
		for i, m := range src {
			dst[i] = dynet.Message{From: m.From, NBits: m.NBits, Payload: append([]byte(nil), m.Payload...)}
		}
		co.curInbox[v] = dst
	}
}

func (co *coordinator) allActs() bool {
	for v := 0; v < co.n; v++ {
		if !co.curActs[v] {
			return false
		}
	}
	return true
}

func (co *coordinator) allStats() bool {
	for v := 0; v < co.n; v++ {
		if !co.curStats[v] {
			return false
		}
	}
	return true
}

func (co *coordinator) allJoined() bool {
	for v := 0; v < co.n; v++ {
		if !co.joinReady[v] {
			return false
		}
	}
	return true
}

func (co *coordinator) allStatsFrames() bool {
	for v := 0; v < co.n; v++ {
		if co.links[v].connected && !co.statsGot[v] {
			return false
		}
	}
	return true
}

// pokeActs re-sends STEP to every up node still missing a commitment.
func (co *coordinator) pokeActs() {
	step := Frame{Type: FrameStep, Round: int32(co.round)}
	for v := 0; v < co.n; v++ {
		if !co.curActs[v] && co.links[v].connected {
			co.writeTo(v, &step)
		}
	}
}

// pokeStatus redoes the round tail — STEP, the recorded post-fault inbox
// under FlagNoFault, DELIVER — for every up node still missing a status.
// The node side is idempotent, so a poke can never double-step or
// double-deliver.
func (co *coordinator) pokeStatus() {
	for v := 0; v < co.n; v++ {
		if !co.curStats[v] && co.links[v].connected {
			co.redoRoundTail(v)
		}
	}
}

// redoRoundTail replays the current round's coordinator→node frames for
// one node from the recorded post-fault inbox. FlagNoFault keeps the
// socket wrapper from faulting the already-adjudicated copies twice.
func (co *coordinator) redoRoundTail(v int) {
	if !co.writeTo(v, &Frame{Type: FrameStep, Round: int32(co.round), Flags: FlagNoFault}) {
		return
	}
	for _, m := range co.curInbox[v] {
		relay := Frame{
			Type: FrameRelay, Round: int32(co.round), Flags: FlagNoFault,
			From: int32(m.From), To: int32(v), NBits: int32(m.NBits), Payload: m.Payload,
		}
		if !co.writeTo(v, &relay) {
			return
		}
	}
	co.writeTo(v, &Frame{Type: FrameDeliver, Round: int32(co.round), Flags: FlagNoFault})
}

// waitAllJoined blocks until every node has completed its handshake.
func (co *coordinator) waitAllJoined() error {
	return co.await(0, co.allJoined, func() {}, "node handshakes")
}

// await pumps events until cond holds, with per-attempt deadlines,
// bounded retries, exponential backoff, and deterministic jitter.
func (co *coordinator) await(r int, cond func() bool, poke func(), what string) error {
	for attempt := 0; ; attempt++ {
		if !co.pumpUntil(cond, co.attemptTimeout(r, attempt)) {
			return nil
		}
		co.cDeadlineHits.Add(1)
		if attempt >= co.maxRetries {
			return fmt.Errorf("wire: run stalled in round %d waiting for %s (%d attempts)", r, what, attempt+1)
		}
		co.cRetries.Add(1)
		poke()
	}
}

// pumpUntil processes frames and joins until cond holds (returns false)
// or the deadline passes (returns true).
func (co *coordinator) pumpUntil(cond func() bool, d time.Duration) (timedOut bool) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	for !cond() {
		select {
		case ev := <-co.frames:
			co.handleFrame(ev)
		case j := <-co.conns:
			co.handleJoin(j)
		case <-timer.C:
			return true
		}
	}
	return false
}

// attemptTimeout grows the barrier deadline exponentially with a
// deterministic jitter drawn from the spec seed.
func (co *coordinator) attemptTimeout(r, attempt int) time.Duration {
	shift := attempt
	if shift > 10 {
		shift = 10
	}
	backoff := co.retryBase << uint(shift)
	jitter := time.Duration(co.jit.Split('t', uint64(r), uint64(attempt)).Uint64() % uint64(co.retryBase))
	return co.roundTimeout + backoff + jitter
}

// handleJoin adopts a freshly handshaken connection: welcome, replay the
// node's gap, and start its reader. Called only from the coordinator
// goroutine.
func (co *coordinator) handleJoin(j joined) {
	if j.id < 0 || j.id >= co.n {
		j.conn.Close()
		return
	}
	l := &co.links[j.id]
	if l.conn != nil {
		l.conn.Close()
	}
	l.gen++
	l.conn = j.conn
	l.connected = true
	if l.everSeen {
		co.cReconnects.Add(1)
	}
	l.everSeen = true
	if fc, ok := j.conn.(*FaultConn); ok {
		fc.Bind(j.id)
	}

	specJSON, err := EncodeRunSpec(co.spec)
	if err != nil {
		co.markDead(j.id)
		return
	}
	if !co.writeTo(j.id, &Frame{Type: FrameWelcome, Round: int32(len(co.logDown)), Payload: specJSON}) {
		return
	}
	if finalized := len(co.logDown); j.lastDone < finalized {
		payload := co.encodeReplay(j.id, j.lastDone+1, finalized)
		if !co.writeTo(j.id, &Frame{Type: FrameReplay, Round: int32(finalized), Payload: payload}) {
			return
		}
	}
	go co.reader(j.id, l.gen, j.conn)
}

// reader pumps one connection's frames into the coordinator.
func (co *coordinator) reader(node, gen int, conn net.Conn) {
	for {
		f, err := ReadFrame(conn)
		select {
		case co.frames <- inFrame{node: node, gen: gen, f: f, err: err}:
		case <-co.quit:
			return
		}
		if err != nil && !errors.Is(err, ErrCRC) {
			return
		}
	}
}

func (co *coordinator) handleFrame(ev inFrame) {
	v := ev.node
	if ev.gen != co.links[v].gen {
		return // stale connection generation
	}
	if ev.err != nil {
		if errors.Is(ev.err, ErrCRC) {
			// Node→coordinator frames are never fault-injected, so a CRC
			// failure here is line noise: drop the record and let the
			// round barrier's retry machinery re-poke.
			co.cCRC.Add(1)
			return
		}
		co.markDead(v)
		return
	}
	f := ev.f
	switch f.Type {
	case FrameReady:
		co.joinReady[v] = true
		co.outputs[v] = frameOutput(f)
		co.statusDec[v] = f.Flags&FlagDecided != 0
		co.resyncNode(v)
	case FrameAct:
		if int(f.Round) != co.round || co.phase == phaseIdle || co.curActs[v] {
			return
		}
		co.curActs[v] = true
		if f.Flags&FlagSend != 0 {
			co.actions[v] = dynet.Send
			co.outgoing[v] = dynet.Message{From: v, Payload: f.Payload, NBits: int(f.NBits)}
		} else {
			co.actions[v] = dynet.Receive
			co.outgoing[v] = dynet.Message{From: v}
		}
	case FrameStatus:
		if int(f.Round) != co.round || co.phase != phaseStatus || co.curStats[v] {
			return
		}
		co.curStats[v] = true
		co.outputs[v] = frameOutput(f)
		co.statusDec[v] = f.Flags&FlagDecided != 0
	case FrameStats:
		if !co.statsGot[v] {
			co.statsGot[v] = true
			co.foldNodeStats(f.Payload)
		}
	}
}

// resyncNode brings a rejoined node into the current phase: during the
// commitment barrier a fresh STEP suffices; during the status barrier
// the whole round tail is redone from the recorded inbox.
func (co *coordinator) resyncNode(v int) {
	if co.downNow(v) {
		return
	}
	switch co.phase {
	case phaseActs:
		if !co.curActs[v] {
			co.writeTo(v, &Frame{Type: FrameStep, Round: int32(co.round)})
		}
	case phaseStatus:
		if !co.curStats[v] {
			co.redoRoundTail(v)
		}
	case phaseStats:
		if !co.statsGot[v] {
			co.writeTo(v, &Frame{Type: FrameFinish})
		}
	}
}

// writeTo writes one frame to a node's link, arming a write deadline so
// a wedged peer cannot block the barrier; a failed write marks the link
// dead (the node will reconnect and resync).
func (co *coordinator) writeTo(v int, f *Frame) bool {
	l := &co.links[v]
	if !l.connected {
		return false
	}
	l.conn.SetWriteDeadline(time.Now().Add(co.roundTimeout)) //lint:allow wiredeterminism deadline arming is the sanctioned wall-clock use
	if err := WriteFrame(l.conn, f); err != nil {
		co.markDead(v)
		return false
	}
	return true
}

func (co *coordinator) markDead(v int) {
	l := &co.links[v]
	if l.connected {
		l.connected = false
		l.conn.Close()
	}
}

// fail aborts the cluster with the model error and returns it — the
// distributed twin of the engine's error return.
func (co *coordinator) fail(err error) error {
	abort := Frame{Type: FrameAbort, Payload: []byte(err.Error())}
	for v := 0; v < co.n; v++ {
		if co.links[v].connected {
			co.writeTo(v, &abort)
		}
	}
	return err
}

// finish ends the run: FINISH fan-out, best-effort STATS fan-in (folded
// into the transport registry), tolerant of nodes that already left.
func (co *coordinator) finish() {
	co.phase = phaseStats
	fin := Frame{Type: FrameFinish}
	for v := 0; v < co.n; v++ {
		if co.links[v].connected {
			co.writeTo(v, &fin)
		}
	}
	// Stats are observability, not model state: exhaust the retry budget,
	// then proceed without error.
	co.await(co.round, co.allStatsFrames, func() {
		fin := Frame{Type: FrameFinish}
		for v := 0; v < co.n; v++ {
			if co.links[v].connected && !co.statsGot[v] {
				co.writeTo(v, &fin)
			}
		}
	}, "transport stats")
	co.phase = phaseIdle
}

// foldNodeStats merges one node's reported transport counters.
func (co *coordinator) foldNodeStats(payload []byte) {
	st, err := parseNodeStats(payload)
	if err != nil {
		return
	}
	tr := co.cfg.Transport
	tr.Counter("wire_node_redials_total").Add(st.Redials)
	tr.Counter("wire_crc_rejects_total").Add(st.CRCRejects)
	tr.Counter("wire_replayed_rounds_total").Add(st.ReplayedRounds)
}

// acceptLoop accepts connections and handshakes each on its own
// goroutine; completed handshakes are handed to the coordinator.
func (co *coordinator) acceptLoop() {
	for {
		c, err := co.ln.Accept()
		if err != nil {
			return
		}
		go co.handshake(c)
	}
}

// handshake reads the HELLO that opens every node connection.
func (co *coordinator) handshake(c net.Conn) {
	c.SetReadDeadline(time.Now().Add(co.roundTimeout * time.Duration(co.maxRetries+1))) //lint:allow wiredeterminism deadline arming is the sanctioned wall-clock use
	f, err := ReadFrame(c)
	if err != nil || f.Type != FrameHello {
		c.Close()
		return
	}
	c.SetReadDeadline(time.Time{})
	select {
	case co.conns <- joined{conn: c, id: int(f.From), lastDone: int(f.Round)}:
	case <-co.quit:
		c.Close()
	}
}
