package wire

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dyndiam/internal/dynet"
	"dyndiam/internal/faults"
	"dyndiam/internal/graph"
	"dyndiam/internal/obs"
)

const testRingCap = 1 << 16

// runDistributed executes spec as a real coordinator plus N node
// sessions over loopback TCP (goroutine processes; cmd/dynnode covers
// OS processes) and returns the artifacts, the transport registry, and
// each node's exit error.
func runDistributed(t *testing.T, spec RunSpec, mut func(*Config)) (*RunArtifacts, *obs.Registry, []error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr, ring, reg := NewArtifacts(testRingCap)
	transport := obs.NewRegistry()
	cfg := Config{
		Spec:         spec,
		Listener:     ln,
		Trace:        tr,
		Obs:          ring,
		Metrics:      reg,
		Transport:    transport,
		RoundTimeout: 500 * time.Millisecond,
		MaxRetries:   10,
		RetryBase:    10 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	nodeErrs := make([]error, spec.N)
	var wg sync.WaitGroup
	for v := 0; v < spec.N; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			nodeErrs[v] = RunNode(NodeConfig{
				ID:          v,
				Addr:        ln.Addr().String(),
				DialBase:    5 * time.Millisecond,
				IdleTimeout: 20 * time.Second,
			})
		}(v)
	}
	res, runErr := Run(cfg)
	wg.Wait()
	return CollectArtifacts(res, runErr, tr, ring, reg), transport, nodeErrs
}

// TestDistributedEquivalence is the keystone golden differential: over a
// matrix of protocols, adversaries, and fault mixes — including nonzero
// drop/corrupt/dup rates and crash/rejoin outages injected at the socket
// layer — the distributed execution must match Engine.Run byte for byte
// across results, per-round traces, obs event streams, and model metric
// snapshots.
func TestDistributedEquivalence(t *testing.T) {
	cases := []struct {
		name string
		spec RunSpec
	}{
		{"cflood-ring-clean", RunSpec{
			Proto: "cflood", N: 8, Seed: 1, MaxRounds: 32, Adv: "ring", CheckConnectivity: true,
		}},
		{"cflood-zero-rounds", RunSpec{
			Proto: "cflood", N: 4, Seed: 2, MaxRounds: 0, Adv: "line",
		}},
		{"pflood-random-drop", RunSpec{
			Proto: "pflood", N: 8, Seed: 3, MaxRounds: 48, Adv: "random",
			Fault: faults.Spec{Seed: 7, Drop: 0.2},
		}},
		{"consensus-star-corrupt-dup", RunSpec{
			Proto: "consensus", N: 6, Seed: 4, MaxRounds: 64, Adv: "star",
			Fault: faults.Spec{Seed: 9, Corrupt: 0.25, Dup: 0.25},
		}},
		{"leader-bounded-mixed", RunSpec{
			Proto: "leader", N: 6, Seed: 5, MaxRounds: 96, Adv: "bounded", AdvD: 3,
			Fault: faults.Spec{Seed: 11, Drop: 0.05, Corrupt: 0.05, Dup: 0.05},
		}},
		{"cflood-rotating-outages", RunSpec{
			Proto: "cflood", N: 8, Seed: 6, MaxRounds: 40, Adv: "rotating",
			Fault: faults.Spec{Seed: 13, Outages: []faults.Outage{
				{Node: 3, From: 2, Until: 5},
				{Node: 6, From: 4, Until: 7},
			}},
		}},
		{"pflood-ring-crash-rate", RunSpec{
			Proto: "pflood", N: 8, Seed: 7, MaxRounds: 48, Adv: "ring",
			Fault: faults.Spec{Seed: 17, Crash: 0.08, MeanDown: 3},
		}},
		{"cflood-complete-edgecut", RunSpec{
			Proto: "cflood", N: 8, Seed: 8, MaxRounds: 40, Adv: "complete", CheckConnectivity: true,
			Fault: faults.Spec{Seed: 19, EdgeCut: 0.15},
		}},
		{"consensus-line-everything", RunSpec{
			Proto: "consensus", N: 6, Seed: 9, MaxRounds: 80, Adv: "line",
			Extra: map[string]int64{"D": 8},
			Fault: faults.Spec{
				Seed: 23, Drop: 0.1, Corrupt: 0.1, Dup: 0.1, EdgeCut: 0.05,
				Outages: []faults.Outage{{Node: 2, From: 3, Until: 6}},
			},
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			dist, transport, nodeErrs := runDistributed(t, tc.spec, nil)
			proc, err := RunInProcess(tc.spec, testRingCap)
			if err != nil {
				t.Fatalf("in-process twin: %v", err)
			}
			if err := Diff(dist, proc); err != nil {
				t.Fatal(err)
			}
			for v, nerr := range nodeErrs {
				if nerr != nil {
					t.Errorf("node %d exited with %v on a clean run", v, nerr)
				}
			}
			if tc.spec.Fault.Outages != nil || tc.spec.Fault.Crash > 0 {
				// Crash transitions hard-close node connections; the rejoin
				// machinery must have actually run.
				if n := counterValue(transport, "wire_fault_crash_closes_total"); n == 0 {
					t.Error("crash faults injected but wire_fault_crash_closes_total = 0")
				}
				if n := counterValue(transport, "wire_node_redials_total"); n == 0 {
					t.Error("crash closes happened but wire_node_redials_total = 0")
				}
				if n := counterValue(transport, "wire_reconnects_total"); n == 0 {
					t.Error("redials happened but wire_reconnects_total = 0")
				}
			}
		})
	}
}

// badAdv makes the adversary misbehave at a chosen round, to pin the
// coordinator's error texts against the engine's.
type badAdv struct {
	inner   dynet.Adversary
	atRound int
	mode    string // "nil", "small", "disconnected"
}

func (a *badAdv) Topology(r int, actions []dynet.Action) *graph.Graph {
	g := a.inner.Topology(r, actions)
	if r != a.atRound {
		return g
	}
	switch a.mode {
	case "nil":
		return nil
	case "small":
		return graph.Ring(g.N() - 1)
	case "disconnected":
		b := graph.New(g.N())
		b.AddEdge(0, 1)
		return b
	}
	return g
}

// TestDistributedErrorEquivalence pins that model violations abort the
// cluster with the byte-identical engine error — at the coordinator and
// at every node process.
func TestDistributedErrorEquivalence(t *testing.T) {
	base := RunSpec{Proto: "cflood", N: 6, Seed: 21, MaxRounds: 24, Adv: "ring", CheckConnectivity: true}
	for _, mode := range []string{"nil", "small", "disconnected"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			t.Parallel()
			mkAdv := func() dynet.Adversary {
				inner, err := base.BuildAdversary()
				if err != nil {
					t.Fatal(err)
				}
				return &badAdv{inner: inner, atRound: 3, mode: mode}
			}
			dist, _, nodeErrs := runDistributed(t, base, func(cfg *Config) { cfg.Adv = mkAdv() })
			if dist.Err == nil {
				t.Fatal("distributed run accepted a misbehaving adversary")
			}

			machines, err := base.Machines()
			if err != nil {
				t.Fatal(err)
			}
			terminated, err := base.Terminated()
			if err != nil {
				t.Fatal(err)
			}
			tr, ring, reg := NewArtifacts(testRingCap)
			eng := &dynet.Engine{
				Machines: machines, Adv: mkAdv(), CheckConnectivity: true,
				Workers: 1, Trace: tr, Obs: ring, Metrics: reg, Terminated: terminated,
			}
			res, runErr := eng.Run(base.MaxRounds)
			proc := CollectArtifacts(res, runErr, tr, ring, reg)
			if proc.Err == nil {
				t.Fatal("engine accepted a misbehaving adversary")
			}
			if err := Diff(dist, proc); err != nil {
				t.Fatal(err)
			}
			// Every node is aborted with the same error text.
			for v, nerr := range nodeErrs {
				if nerr == nil || nerr.Error() != proc.Err.Error() {
					t.Errorf("node %d error = %v, want %q", v, nerr, proc.Err)
				}
			}
		})
	}
}

// TestRunSpecRoundTrip pins the WELCOME serialization contract.
func TestRunSpecRoundTrip(t *testing.T) {
	spec := RunSpec{
		Proto: "leader", N: 12, Seed: 99, MaxRounds: 500, CheckConnectivity: true,
		Adv: "bounded", AdvD: 4, Extra: map[string]int64{"D": 6},
		Fault: faults.Spec{Seed: 3, Drop: 0.01, Outages: []faults.Outage{{Node: 1, From: 2, Until: 9}}},
	}
	data, err := EncodeRunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseRunSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Proto != spec.Proto || got.N != spec.N || got.Seed != spec.Seed ||
		got.MaxRounds != spec.MaxRounds || got.Adv != spec.Adv || got.AdvD != spec.AdvD ||
		got.Extra["D"] != 6 || got.Fault.Drop != spec.Fault.Drop || len(got.Fault.Outages) != 1 {
		t.Fatalf("round-trip mismatch: %+v vs %+v", got, spec)
	}
	if _, err := ParseRunSpec([]byte(`{"proto":"nope","n":4,"max_rounds":1}`)); err == nil ||
		!strings.Contains(err.Error(), "unknown protocol") {
		t.Fatalf("bad protocol: err = %v", err)
	}
	if _, err := ParseRunSpec([]byte(`{"proto":"cflood","n":4,"max_rounds":1,"bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseRunSpec([]byte(`{"proto":"cflood","n":4,"max_rounds":1,"fault":{"drop":-1}}`)); err == nil {
		t.Fatal("invalid fault spec accepted")
	}
}
