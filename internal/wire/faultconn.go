package wire

import (
	"encoding/binary"
	"net"

	"dyndiam/internal/faults"
	"dyndiam/internal/obs"
)

// FaultListener wraps a net.Listener so every accepted connection
// injects the fault spec at the socket layer, on the coordinator→node
// byte stream:
//
//   - drop: the relay frame is swallowed whole — the receiver never sees
//     the record.
//   - corrupt: one payload bit is flipped in place, leaving the CRC
//     stale; the receiver's checksum catches it and adjudicates against
//     its own plan (accepting the damage as the injected model fault).
//   - dup: the relay frame is written twice, back to back.
//   - crash: at a node's crash transition the underlying connection is
//     hard-closed, and every round frame addressed to the node is
//     swallowed for as long as the plan keeps it down.
//
// Each connection compiles its own Plan from the shared Spec, so every
// decision is a pure function of (seed, round, node, edge) — the
// coordinator's accounting twin (dynet.FaultRunner) reaches the same
// verdicts without any channel between them, which is what keeps the
// distributed run byte-equivalent to Engine.Run.
type FaultListener struct {
	net.Listener
	spec      faults.Spec
	transport *obs.Registry
}

// NewFaultListener validates the spec and wraps ln. The transport
// registry (optional) receives wire_fault_* injection counters.
func NewFaultListener(ln net.Listener, spec faults.Spec, transport *obs.Registry) (*FaultListener, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &FaultListener{Listener: ln, spec: spec, transport: transport}, nil
}

// Accept wraps the next connection in a *FaultConn.
func (l *FaultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	plan, err := faults.NewPlan(l.spec)
	if err != nil {
		c.Close()
		return nil, err
	}
	return &FaultConn{
		Conn:      c,
		plan:      plan,
		node:      -1,
		cDrops:    l.transport.Counter("wire_fault_drops_total"),
		cCorrupts: l.transport.Counter("wire_fault_corrupts_total"),
		cDups:     l.transport.Counter("wire_fault_dups_total"),
		cCloses:   l.transport.Counter("wire_fault_crash_closes_total"),
	}, nil
}

// FaultConn injects the plan into the outgoing (coordinator→node) frame
// stream. Reads pass through untouched — node→coordinator frames carry
// commitments and statuses, which the model never faults.
//
// Bind and Write must be called from one goroutine (the coordinator's);
// reads may run concurrently from a reader goroutine.
type FaultConn struct {
	net.Conn
	plan *faults.Plan
	node int // bound node id, -1 until the Hello is seen

	buf     []byte // partial-frame accumulation across Write calls
	crashed bool   // hard close already performed

	cDrops, cCorrupts, cDups, cCloses *obs.Counter
}

// Bind associates the connection with its node id, enabling injection.
// Until the Hello identifies the peer, frames pass through unfaulted.
func (c *FaultConn) Bind(node int) { c.node = node }

// Write parses the outgoing byte stream into frames and applies the
// plan to each complete record. It reports the input as consumed even
// when frames are swallowed: a dropped frame is a delivered fault, not a
// transport failure.
func (c *FaultConn) Write(p []byte) (int, error) {
	c.buf = append(c.buf, p...)
	consumed := 0
	for {
		if len(c.buf)-consumed < 4 {
			break
		}
		rec := c.buf[consumed:]
		total := int(binary.BigEndian.Uint32(rec[:4]))
		if len(rec) < 4+total {
			break
		}
		if err := c.inject(rec[:4+total]); err != nil {
			c.buf = c.buf[:0]
			return len(p), err
		}
		consumed += 4 + total
	}
	// Keep only the unconsumed tail; copying keeps the buffer from
	// aliasing the caller's slice and from growing without bound.
	tail := c.buf[consumed:]
	c.buf = append(c.buf[:0], tail...)
	return len(p), nil
}

// inject decides one frame's fate and writes 0, 1, or 2 copies to the
// underlying connection. rec is the full record including length prefix.
func (c *FaultConn) inject(rec []byte) error {
	typ := FrameType(rec[4])
	flags := rec[5]
	if c.node < 0 || flags&FlagNoFault != 0 {
		return c.forward(rec)
	}
	switch typ {
	case FrameStep, FrameRelay, FrameDeliver:
	default:
		// Control frames (Welcome, Replay, Finish, Abort) are transport,
		// not model messages; they are never faulted.
		return c.forward(rec)
	}
	r := int(int32(binary.BigEndian.Uint32(rec[6:10])))
	if c.plan.Down(r, c.node) {
		// The node is crashed for round r: everything addressed to it is
		// lost. The crash transition itself is a hard connection close —
		// the socket-level form of the fault.
		if typ == FrameStep && !c.plan.Down(r-1, c.node) && !c.crashed {
			c.crashed = true
			c.cCloses.Add(1)
			c.Conn.Close()
		}
		return nil
	}
	if typ != FrameRelay {
		return c.forward(rec)
	}
	from := int(int32(binary.BigEndian.Uint32(rec[10:14])))
	to := int(int32(binary.BigEndian.Uint32(rec[14:18])))
	nbits := int(int32(binary.BigEndian.Uint32(rec[18:22])))
	d := c.plan.Delivery(r, from, to, nbits)
	if d.Drop {
		c.cDrops.Add(1)
		return nil
	}
	if d.FlipBit >= 0 {
		// Flip the same payload bit the engine's corruptCopy would,
		// leaving the trailing CRC stale so the receiver detects it.
		payload := rec[4+frameHeaderLen : len(rec)-4]
		if byteIdx := d.FlipBit / 8; byteIdx < len(payload) {
			payload[byteIdx] ^= 1 << uint(d.FlipBit%8)
			c.cCorrupts.Add(1)
		}
	}
	if err := c.forward(rec); err != nil {
		return err
	}
	if d.Dup {
		c.cDups.Add(1)
		return c.forward(rec)
	}
	return nil
}

func (c *FaultConn) forward(rec []byte) error {
	_, err := c.Conn.Write(rec)
	return err
}
