package wire

import (
	"bytes"
	"errors"
	"net"
	"testing"

	"dyndiam/internal/faults"
	"dyndiam/internal/obs"
)

// newFaultPipe wires a FaultConn over an in-memory pipe: the returned
// conn is the injection side (coordinator), the raw end is the node.
func newFaultPipe(t *testing.T, spec faults.Spec, reg *obs.Registry) (*FaultConn, net.Conn) {
	t.Helper()
	cw, nr := net.Pipe()
	t.Cleanup(func() { cw.Close(); nr.Close() })
	plan, err := faults.NewPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	return &FaultConn{
		Conn:      cw,
		plan:      plan,
		node:      -1,
		cDrops:    reg.Counter("wire_fault_drops_total"),
		cCorrupts: reg.Counter("wire_fault_corrupts_total"),
		cDups:     reg.Counter("wire_fault_dups_total"),
		cCloses:   reg.Counter("wire_fault_crash_closes_total"),
	}, nr
}

type readResult struct {
	f   Frame
	err error
}

func readFrames(c net.Conn) <-chan readResult {
	ch := make(chan readResult, 64)
	go func() {
		defer close(ch)
		for {
			f, err := ReadFrame(c)
			ch <- readResult{f, err}
			if err != nil && !errors.Is(err, ErrCRC) {
				return
			}
		}
	}()
	return ch
}

func counterValue(reg *obs.Registry, name string) int64 {
	for _, p := range reg.Snapshot() {
		if p.Name == name {
			return p.Value
		}
	}
	return 0
}

func TestFaultConnDrop(t *testing.T) {
	reg := obs.NewRegistry()
	fc, raw := newFaultPipe(t, faults.Spec{Seed: 5, Drop: 1}, reg)
	fc.Bind(0)
	rx := readFrames(raw)

	relay := Frame{Type: FrameRelay, Round: 1, From: 1, To: 0, NBits: 8, Payload: []byte{0xaa}}
	if err := WriteFrame(fc, &relay); err != nil {
		t.Fatal(err)
	}
	deliver := Frame{Type: FrameDeliver, Round: 1}
	if err := WriteFrame(fc, &deliver); err != nil {
		t.Fatal(err)
	}
	// Ordering is the proof: the frame after the dropped relay arrives first.
	got := <-rx
	if got.err != nil || got.f.Type != FrameDeliver {
		t.Fatalf("after dropped relay: got %v (err %v), want the deliver", got.f, got.err)
	}
	if n := counterValue(reg, "wire_fault_drops_total"); n != 1 {
		t.Fatalf("wire_fault_drops_total = %d, want 1", n)
	}
}

func TestFaultConnCorruptMatchesPlan(t *testing.T) {
	spec := faults.Spec{Seed: 9, Corrupt: 1}
	reg := obs.NewRegistry()
	fc, raw := newFaultPipe(t, spec, reg)
	fc.Bind(0)
	rx := readFrames(raw)

	payload := []byte{0x00, 0x00, 0x00, 0x00}
	relay := Frame{Type: FrameRelay, Round: 1, From: 1, To: 0, NBits: 32, Payload: payload}
	if err := WriteFrame(fc, &relay); err != nil {
		t.Fatal(err)
	}
	got := <-rx
	if !errors.Is(got.err, ErrCRC) {
		t.Fatalf("corrupted relay: err = %v, want ErrCRC", got.err)
	}
	// An independent plan from the same spec must predict the exact bit —
	// that purity is what lets the receiver adjudicate the damage.
	plan, err := faults.NewPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	d := plan.Delivery(1, 1, 0, 32)
	if d.FlipBit < 0 {
		t.Fatal("independent plan does not predict corruption; spec purity broken")
	}
	want := append([]byte(nil), payload...)
	want[d.FlipBit/8] ^= 1 << uint(d.FlipBit%8)
	if !bytes.Equal(got.f.Payload, want) {
		t.Fatalf("corrupted payload = %v, want %v (flip bit %d)", got.f.Payload, want, d.FlipBit)
	}
	if n := counterValue(reg, "wire_fault_corrupts_total"); n != 1 {
		t.Fatalf("wire_fault_corrupts_total = %d, want 1", n)
	}
}

func TestFaultConnDup(t *testing.T) {
	reg := obs.NewRegistry()
	fc, raw := newFaultPipe(t, faults.Spec{Seed: 11, Dup: 1}, reg)
	fc.Bind(0)
	rx := readFrames(raw)

	relay := Frame{Type: FrameRelay, Round: 1, From: 1, To: 0, NBits: 8, Payload: []byte{0x0f}}
	if err := WriteFrame(fc, &relay); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got := <-rx
		if got.err != nil || got.f.Type != FrameRelay || !bytes.Equal(got.f.Payload, []byte{0x0f}) {
			t.Fatalf("dup copy %d: got %v (err %v)", i, got.f, got.err)
		}
	}
	if n := counterValue(reg, "wire_fault_dups_total"); n != 1 {
		t.Fatalf("wire_fault_dups_total = %d, want 1", n)
	}
}

func TestFaultConnNoFaultFlagAndUnbound(t *testing.T) {
	reg := obs.NewRegistry()
	fc, raw := newFaultPipe(t, faults.Spec{Seed: 5, Drop: 1}, reg)
	rx := readFrames(raw)

	// Unbound (pre-handshake): everything passes.
	relay := Frame{Type: FrameRelay, Round: 1, From: 1, To: 0, NBits: 8, Payload: []byte{1}}
	if err := WriteFrame(fc, &relay); err != nil {
		t.Fatal(err)
	}
	if got := <-rx; got.err != nil || got.f.Type != FrameRelay {
		t.Fatalf("unbound conn faulted a frame: %v (err %v)", got.f, got.err)
	}

	// Bound, but flagged NoFault (redelivery of adjudicated copies): passes.
	fc.Bind(0)
	relay.Flags = FlagNoFault
	if err := WriteFrame(fc, &relay); err != nil {
		t.Fatal(err)
	}
	if got := <-rx; got.err != nil || got.f.Type != FrameRelay {
		t.Fatalf("NoFault frame faulted: %v (err %v)", got.f, got.err)
	}
	if n := counterValue(reg, "wire_fault_drops_total"); n != 0 {
		t.Fatalf("wire_fault_drops_total = %d, want 0", n)
	}
}

func TestFaultConnCrashClosesAtTransition(t *testing.T) {
	reg := obs.NewRegistry()
	spec := faults.Spec{Outages: []faults.Outage{{Node: 0, From: 2, Until: 4}}}
	fc, raw := newFaultPipe(t, spec, reg)
	fc.Bind(0)
	rx := readFrames(raw)

	if err := WriteFrame(fc, &Frame{Type: FrameStep, Round: 1}); err != nil {
		t.Fatal(err)
	}
	if got := <-rx; got.err != nil || got.f.Round != 1 {
		t.Fatalf("pre-outage step: %v (err %v)", got.f, got.err)
	}
	// Round 2 is the crash transition: the step is swallowed and the
	// connection hard-closed — the socket-level form of the crash fault.
	_ = WriteFrame(fc, &Frame{Type: FrameStep, Round: 2}) // the close may surface here or on the reader
	got := <-rx
	if got.err == nil {
		t.Fatalf("connection survived the crash transition: got %v", got.f)
	}
	if n := counterValue(reg, "wire_fault_crash_closes_total"); n != 1 {
		t.Fatalf("wire_fault_crash_closes_total = %d, want 1", n)
	}
}

func TestFaultConnReassemblesSplitWrites(t *testing.T) {
	reg := obs.NewRegistry()
	fc, raw := newFaultPipe(t, faults.Spec{Seed: 5, Drop: 1}, reg)
	fc.Bind(0)
	rx := readFrames(raw)

	// One record dribbled byte by byte, then a relay and a deliver fused
	// into a single Write: record extraction must be boundary-exact.
	relay := AppendFrame(nil, &Frame{Type: FrameRelay, Round: 1, From: 1, To: 0, NBits: 8, Payload: []byte{9}})
	for _, b := range relay {
		if _, err := fc.Write([]byte{b}); err != nil {
			t.Fatal(err)
		}
	}
	fused := AppendFrame(nil, &Frame{Type: FrameRelay, Round: 1, From: 2, To: 0, NBits: 8, Payload: []byte{8}})
	fused = AppendFrame(fused, &Frame{Type: FrameDeliver, Round: 1})
	if _, err := fc.Write(fused); err != nil {
		t.Fatal(err)
	}
	got := <-rx
	if got.err != nil || got.f.Type != FrameDeliver {
		t.Fatalf("after two dropped relays: got %v (err %v), want the deliver", got.f, got.err)
	}
	if n := counterValue(reg, "wire_fault_drops_total"); n != 2 {
		t.Fatalf("wire_fault_drops_total = %d, want 2", n)
	}
}

func TestFaultListenerWrapsAccepts(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := NewFaultListener(raw, faults.Spec{Drop: -1}, nil); err == nil {
		t.Fatal("invalid spec accepted")
	}
	fl, err := NewFaultListener(raw, faults.Spec{Seed: 1, Drop: 0.5}, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := net.Dial("tcp", raw.Addr().String())
		if err == nil {
			c.Close()
		}
	}()
	c, err := fl.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, ok := c.(*FaultConn); !ok {
		t.Fatalf("Accept returned %T, want *FaultConn", c)
	}
	<-done
}
