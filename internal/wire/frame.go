package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame layout on the wire (big endian):
//
//	u32  length of everything after this field (header + payload + crc)
//	u8   type
//	u8   flags
//	i32  round
//	i32  from
//	i32  to
//	i32  nbits
//	...  payload
//	u32  CRC-32 (IEEE) over type..payload
//
// The length prefix makes frame boundaries recoverable from any byte
// stream position; the trailing CRC makes payload corruption — including
// the single-bit flips the fault layer injects — detectable at the
// receiver, which then adjudicates the damage against its own fault plan
// (see node.go).

// FrameType discriminates wire frames.
type FrameType uint8

// Frame types. Coordinator→node: Welcome, Replay, Step, Relay, Deliver,
// Finish, Abort. Node→coordinator: Hello, Ready, Act, Status, Stats.
const (
	// FrameHello opens a connection: From = node id, Round = the node's
	// last completed round (0 for a fresh process).
	FrameHello FrameType = iota + 1
	// FrameWelcome carries the serialized RunSpec.
	FrameWelcome
	// FrameReplay carries the node's per-round catch-up log (see
	// appendReplay): Round = last replayed round.
	FrameReplay
	// FrameStep tells the node to commit round Round.
	FrameStep
	// FrameAct is the node's commitment: FlagSend + NBits + payload when
	// sending, bare otherwise.
	FrameAct
	// FrameRelay delivers one sender's message into a receiver's inbox:
	// From = sender, To = receiver. Without FlagNoFault it is subject to
	// socket-layer fault injection.
	FrameRelay
	// FrameDeliver closes the round's inbox: the node delivers (if it
	// committed Receive) and answers with FrameStatus.
	FrameDeliver
	// FrameStatus reports (output, decided) after Round.
	FrameStatus
	// FrameFinish ends the run; the node answers with FrameStats and
	// exits.
	FrameFinish
	// FrameStats carries the node's transport counters as JSON.
	FrameStats
	// FrameAbort carries a fatal error text; the node exits with it.
	FrameAbort
	// FrameReady completes a (re)join handshake: the node has processed
	// Welcome/Replay; Round = its last completed round, payload/flags =
	// its current (output, decided).
	FrameReady
)

// Frame flags.
const (
	// FlagSend marks an Act frame whose node committed Send.
	FlagSend = 1 << iota
	// FlagDecided marks Status/Ready/Hello frames of a decided node.
	FlagDecided
	// FlagNoFault exempts a frame from socket-layer fault injection:
	// replayed and redelivered frames carry already-adjudicated faults
	// and must not be faulted twice.
	FlagNoFault
)

// Frame is one parsed wire frame.
type Frame struct {
	Type    FrameType
	Flags   uint8
	Round   int32
	From    int32
	To      int32
	NBits   int32
	Payload []byte
}

const (
	frameHeaderLen  = 18      // type..nbits, after the length prefix
	maxFramePayload = 1 << 24 // hard cap; real payloads are CONGEST-sized
)

// ErrCRC reports a frame whose trailing checksum does not match its
// contents. ReadFrame returns it alongside the fully parsed frame so the
// caller can adjudicate the corruption (injected model fault vs line
// noise) instead of losing the record.
var ErrCRC = errors.New("wire: frame CRC mismatch")

// AppendFrame serializes f onto dst and returns the extended slice.
func AppendFrame(dst []byte, f *Frame) []byte {
	total := frameHeaderLen + len(f.Payload) + 4
	dst = binary.BigEndian.AppendUint32(dst, uint32(total))
	body := len(dst)
	dst = append(dst, byte(f.Type), f.Flags)
	dst = binary.BigEndian.AppendUint32(dst, uint32(f.Round))
	dst = binary.BigEndian.AppendUint32(dst, uint32(f.From))
	dst = binary.BigEndian.AppendUint32(dst, uint32(f.To))
	dst = binary.BigEndian.AppendUint32(dst, uint32(f.NBits))
	dst = append(dst, f.Payload...)
	sum := crc32.ChecksumIEEE(dst[body:])
	return binary.BigEndian.AppendUint32(dst, sum)
}

// WriteFrame serializes f and writes it in a single Write call, so a
// frame-boundary-aware wrapper (FaultConn) sees whole records.
func WriteFrame(w io.Writer, f *Frame) error {
	buf := AppendFrame(nil, f)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame. On a checksum mismatch it returns the
// parsed frame together with ErrCRC; every other error is a transport
// failure. Payload bytes are freshly allocated per frame and safe to
// retain.
func ReadFrame(r io.Reader) (Frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Frame{}, err
	}
	total := binary.BigEndian.Uint32(lenBuf[:])
	if total < frameHeaderLen+4 || total > frameHeaderLen+maxFramePayload+4 {
		return Frame{}, fmt.Errorf("wire: frame length %d outside [%d, %d]", total, frameHeaderLen+4, frameHeaderLen+maxFramePayload+4)
	}
	body := make([]byte, total)
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, err
	}
	f, sum := parseFrameBody(body[:total-4])
	if sum != binary.BigEndian.Uint32(body[total-4:]) {
		return f, ErrCRC
	}
	return f, nil
}

// parseFrameBody decodes header+payload bytes (no length prefix, no
// trailing CRC) and returns the frame plus the checksum of the bytes.
func parseFrameBody(body []byte) (Frame, uint32) {
	f := Frame{
		Type:  FrameType(body[0]),
		Flags: body[1],
		Round: int32(binary.BigEndian.Uint32(body[2:6])),
		From:  int32(binary.BigEndian.Uint32(body[6:10])),
		To:    int32(binary.BigEndian.Uint32(body[10:14])),
		NBits: int32(binary.BigEndian.Uint32(body[14:18])),
	}
	if len(body) > frameHeaderLen {
		f.Payload = body[frameHeaderLen:]
	}
	return f, crc32.ChecksumIEEE(body)
}

// String renders a frame compactly for errors and debugging.
func (f Frame) String() string {
	return fmt.Sprintf("frame{type=%d flags=%#x r=%d from=%d to=%d nbits=%d |payload|=%d}",
		f.Type, f.Flags, f.Round, f.From, f.To, f.NBits, len(f.Payload))
}
