package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: FrameHello, From: 3, Round: 17},
		{Type: FrameStep, Round: 1},
		{Type: FrameAct, Flags: FlagSend, Round: 9, From: 2, NBits: 52, Payload: []byte{0xde, 0xad, 0xbe, 0xef}},
		{Type: FrameRelay, Flags: FlagNoFault, Round: 4, From: 1, To: 6, NBits: 8, Payload: []byte{0xff}},
		{Type: FrameStatus, Flags: FlagDecided, Round: 12, From: 0, Payload: appendOutput(-42)},
		{Type: FrameAbort, Payload: []byte("dynet: adversary returned disconnected topology in round 3")},
		{Type: FrameDeliver, Round: 1 << 20},
	}
	var buf bytes.Buffer
	for i := range frames {
		if err := WriteFrame(&buf, &frames[i]); err != nil {
			t.Fatalf("WriteFrame(%v): %v", frames[i], err)
		}
	}
	for i := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame #%d: %v", i, err)
		}
		want := frames[i]
		if got.Type != want.Type || got.Flags != want.Flags || got.Round != want.Round ||
			got.From != want.From || got.To != want.To || got.NBits != want.NBits ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame #%d round-trip: got %v, want %v", i, got, want)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d trailing bytes after reading all frames", buf.Len())
	}
}

func TestFrameCRCMismatchReturnsParsedFrame(t *testing.T) {
	f := Frame{Type: FrameRelay, Round: 7, From: 2, To: 5, NBits: 24, Payload: []byte{1, 2, 3}}
	rec := AppendFrame(nil, &f)
	// Flip one payload bit the way the fault layer does, leaving the CRC stale.
	rec[4+frameHeaderLen] ^= 0x01

	got, err := ReadFrame(bytes.NewReader(rec))
	if !errors.Is(err, ErrCRC) {
		t.Fatalf("ReadFrame of corrupted record: err = %v, want ErrCRC", err)
	}
	if got.Type != FrameRelay || got.Round != 7 || got.From != 2 || got.To != 5 || got.NBits != 24 {
		t.Fatalf("corrupted frame not parsed alongside ErrCRC: %v", got)
	}
	if want := []byte{0, 2, 3}; !bytes.Equal(got.Payload, want) {
		t.Fatalf("corrupted payload = %v, want %v", got.Payload, want)
	}
}

func TestReadFrameRejectsBadLength(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 1, 9})); err == nil {
		t.Fatal("undersized length accepted")
	}
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(huge)); err == nil {
		t.Fatal("oversized length accepted")
	}
}

func TestReadFrameTruncated(t *testing.T) {
	f := Frame{Type: FrameStep, Round: 3}
	rec := AppendFrame(nil, &f)
	for cut := 1; cut < len(rec); cut++ {
		_, err := ReadFrame(bytes.NewReader(rec[:cut]))
		if err == nil || errors.Is(err, ErrCRC) {
			t.Fatalf("truncation at %d/%d bytes: err = %v, want transport error", cut, len(rec), err)
		}
	}
}

// writeCounter pins the one-record-per-Write contract FaultConn relies on.
type writeCounter struct {
	writes int
	buf    bytes.Buffer
}

func (w *writeCounter) Write(p []byte) (int, error) {
	w.writes++
	return w.buf.Write(p)
}

func TestWriteFrameSingleWrite(t *testing.T) {
	var w writeCounter
	f := Frame{Type: FrameRelay, Round: 2, From: 0, To: 1, NBits: 16, Payload: []byte{7, 7}}
	if err := WriteFrame(&w, &f); err != nil {
		t.Fatal(err)
	}
	if w.writes != 1 {
		t.Fatalf("WriteFrame used %d Write calls, want 1", w.writes)
	}
	if _, err := ReadFrame(&w.buf); err != nil {
		t.Fatalf("reading back: %v", err)
	}
}

func TestReadFrameEOF(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}
