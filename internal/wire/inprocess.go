package wire

import (
	"fmt"
	"reflect"
	"strings"

	"dyndiam/internal/dynet"
	"dyndiam/internal/faults"
	"dyndiam/internal/obs"
)

// RunArtifacts is everything one execution produced that the golden
// differential compares: result, error, per-round trace, obs event
// stream, and the metric snapshot. Both the distributed coordinator and
// the in-process engine fill the same shape.
type RunArtifacts struct {
	Res    *dynet.Result
	Err    error
	Trace  *dynet.Trace
	Events []obs.Event
	// Metrics is the model registry snapshot. Transport counters (wire_*)
	// live in a separate registry and never appear here — the distributed
	// run is allowed transport work, not model divergence.
	Metrics []obs.MetricPoint
}

// NewArtifacts allocates the observation set for one execution: trace
// (stats only — topology snapshots alias arenas and are not comparable
// across runs), event ring, and model metric registry.
func NewArtifacts(ringCap int) (*dynet.Trace, *obs.Ring, *obs.Registry) {
	return &dynet.Trace{}, obs.NewRing(ringCap), obs.NewRegistry()
}

// CollectArtifacts folds one finished execution into the comparable shape.
func CollectArtifacts(res *dynet.Result, err error, tr *dynet.Trace, ring *obs.Ring, reg *obs.Registry) *RunArtifacts {
	return &RunArtifacts{
		Res:     res,
		Err:     err,
		Trace:   tr,
		Events:  ring.Events(),
		Metrics: reg.Snapshot(),
	}
}

// Terminated builds the engine termination predicate the spec implies —
// the in-process form of the coordinator's decision.
func (s *RunSpec) Terminated() (func([]dynet.Machine) bool, error) {
	termNode, err := s.TermNode()
	if err != nil {
		return nil, err
	}
	if termNode >= 0 {
		return dynet.NodeDecided(termNode), nil
	}
	return dynet.AllDecided, nil
}

// RunInProcess executes the spec on dynet.Engine — the golden twin of a
// distributed Run over the identical RunSpec. Workers is pinned to 1 so
// the engine stays on its deterministic sequential path (parallel
// stepping is bit-identical anyway; pinning removes even scheduling
// noise from the comparison).
func RunInProcess(spec RunSpec, ringCap int) (*RunArtifacts, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	machines, err := spec.Machines()
	if err != nil {
		return nil, err
	}
	adv, err := spec.BuildAdversary()
	if err != nil {
		return nil, err
	}
	plan, err := faults.NewPlan(spec.Fault)
	if err != nil {
		return nil, err
	}
	terminated, err := spec.Terminated()
	if err != nil {
		return nil, err
	}
	tr, ring, reg := NewArtifacts(ringCap)
	eng := &dynet.Engine{
		Machines:          machines,
		Adv:               adv,
		CheckConnectivity: spec.CheckConnectivity,
		Workers:           1,
		Trace:             tr,
		Obs:               ring,
		Metrics:           reg,
		Plan:              plan,
		Terminated:        terminated,
	}
	res, runErr := eng.Run(spec.MaxRounds)
	return CollectArtifacts(res, runErr, tr, ring, reg), nil
}

// Diff compares a distributed execution against its in-process twin and
// returns the first divergence, or nil when the runs are byte-identical
// across error texts, results, per-round trace stats, obs event streams,
// and model metric snapshots.
func Diff(dist, proc *RunArtifacts) error {
	if (dist.Err == nil) != (proc.Err == nil) {
		return fmt.Errorf("wire: error divergence: distributed=%v, in-process=%v", dist.Err, proc.Err)
	}
	if dist.Err != nil && dist.Err.Error() != proc.Err.Error() {
		return fmt.Errorf("wire: error text divergence:\n  distributed: %s\n  in-process:  %s", dist.Err, proc.Err)
	}
	if !reflect.DeepEqual(dist.Res, proc.Res) {
		return fmt.Errorf("wire: result divergence:\n  distributed: %+v\n  in-process:  %+v", dist.Res, proc.Res)
	}
	if err := diffTraces(dist.Trace, proc.Trace); err != nil {
		return err
	}
	if err := diffEvents(dist.Events, proc.Events); err != nil {
		return err
	}
	return diffMetrics(dist.Metrics, proc.Metrics)
}

func diffTraces(a, b *dynet.Trace) error {
	if (a == nil) != (b == nil) {
		return fmt.Errorf("wire: trace presence divergence: distributed=%v, in-process=%v", a != nil, b != nil)
	}
	if a == nil {
		return nil
	}
	if len(a.Stats) != len(b.Stats) {
		return fmt.Errorf("wire: trace length divergence: distributed=%d rounds, in-process=%d rounds", len(a.Stats), len(b.Stats))
	}
	for i := range a.Stats {
		if !reflect.DeepEqual(a.Stats[i], b.Stats[i]) {
			return fmt.Errorf("wire: trace divergence at round %d:\n  distributed: %+v\n  in-process:  %+v", a.Stats[i].Round, a.Stats[i], b.Stats[i])
		}
	}
	return nil
}

func diffEvents(a, b []obs.Event) error {
	if len(a) != len(b) {
		return fmt.Errorf("wire: event stream length divergence: distributed=%d, in-process=%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("wire: event divergence at index %d:\n  distributed: %+v\n  in-process:  %+v", i, a[i], b[i])
		}
	}
	return nil
}

// diffMetrics compares model metric snapshots, skipping wire_* transport
// counters on either side (a distributed run earns retries and
// reconnects; the model totals must still match exactly).
func diffMetrics(a, b []obs.MetricPoint) error {
	fa, fb := filterModelMetrics(a), filterModelMetrics(b)
	if len(fa) != len(fb) {
		return fmt.Errorf("wire: metric set divergence: distributed=%d points, in-process=%d points", len(fa), len(fb))
	}
	for i := range fa {
		if !reflect.DeepEqual(fa[i], fb[i]) {
			return fmt.Errorf("wire: metric divergence at %q:\n  distributed: %+v\n  in-process:  %+v", fa[i].Name, fa[i], fb[i])
		}
	}
	return nil
}

func filterModelMetrics(points []obs.MetricPoint) []obs.MetricPoint {
	out := make([]obs.MetricPoint, 0, len(points))
	for _, p := range points {
		if strings.HasPrefix(p.Name, "wire_") {
			continue
		}
		out = append(out, p)
	}
	return out
}
