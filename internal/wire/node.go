package wire

import (
	"errors"
	"fmt"
	"net"
	"time"

	"dyndiam/internal/dynet"
	"dyndiam/internal/faults"
	"dyndiam/internal/obs"
	"dyndiam/internal/rng"
)

// NodeConfig configures one node process.
type NodeConfig struct {
	// ID is the node id (0..n-1); the machine it owns is determined by
	// the RunSpec arriving in the WELCOME frame.
	ID int
	// Addr is the coordinator's TCP address.
	Addr string
	// DialRetries bounds consecutive failed dials and consecutive dead
	// sessions (default 10).
	DialRetries int
	// DialBase scales the dial backoff and its jitter (default 50ms).
	DialBase time.Duration
	// IdleTimeout is the per-frame read deadline; an idle connection past
	// it is presumed lost and redialed (default 2m).
	IdleTimeout time.Duration
	// Stats, when non-nil, receives the node's transport counters
	// (wire_node_*) in addition to the STATS report to the coordinator.
	Stats *obs.Registry
}

// RunNode runs one node process to completion: dial the coordinator,
// handshake (with replay catch-up when rejoining), then serve the round
// barrier until FINISH or ABORT. Lost connections are re-established
// with bounded, jittered backoff; all protocol handling is idempotent,
// so coordinator re-pokes after a reconnect can never double-step or
// double-deliver the machine.
func RunNode(cfg NodeConfig) error {
	if cfg.DialRetries == 0 {
		cfg.DialRetries = 10
	}
	if cfg.DialBase == 0 {
		cfg.DialBase = 50 * time.Millisecond
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 2 * time.Minute
	}
	ns := &nodeState{
		cfg: cfg,
		// Until the WELCOME carries the run seed, jitter draws from an
		// id-derived seed; timing is the only thing it influences.
		jit: rng.New(uint64(cfg.ID)+1).Split('d', 'i', 'a', 'l'),
	}
	deadSessions := 0
	for {
		conn, err := ns.dial()
		if err != nil {
			return err
		}
		done, progressed, err := ns.session(conn)
		conn.Close()
		if done {
			return err
		}
		if progressed {
			deadSessions = 0
		} else if deadSessions++; deadSessions > cfg.DialRetries {
			return fmt.Errorf("wire: node %d: %d consecutive dead sessions with %s", cfg.ID, deadSessions, cfg.Addr)
		}
		ns.stats.Redials++
	}
}

type nodeState struct {
	cfg  NodeConfig
	spec RunSpec
	m    dynet.Machine
	plan *faults.Plan
	jit  *rng.Source

	// lastStepped/lastDelivered define the protocol position; their gap
	// (at most the in-progress round) makes every handler idempotent.
	lastStepped   int
	lastDelivered int
	lastAct       dynet.Action
	lastOut       dynet.Message
	inbox         []dynet.Message

	stats nodeStats
}

// dial connects to the coordinator with bounded exponential backoff and
// deterministic jitter.
func (ns *nodeState) dial() (net.Conn, error) {
	var lastErr error
	for a := 0; a <= ns.cfg.DialRetries; a++ {
		if a > 0 {
			shift := a - 1
			if shift > 10 {
				shift = 10
			}
			backoff := ns.cfg.DialBase << uint(shift)
			jitter := time.Duration(ns.jit.Split(uint64(ns.stats.Redials), uint64(a)).Uint64() % uint64(ns.cfg.DialBase))
			time.Sleep(backoff + jitter)
		}
		c, err := net.Dial("tcp", ns.cfg.Addr)
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("wire: node %d cannot reach coordinator at %s: %w", ns.cfg.ID, ns.cfg.Addr, lastErr)
}

// session serves one connection until the run ends (done=true) or the
// transport fails (done=false → redial). progressed reports whether any
// frame was served, which resets the dead-session budget.
func (ns *nodeState) session(conn net.Conn) (done, progressed bool, err error) {
	if err := WriteFrame(conn, &Frame{Type: FrameHello, From: int32(ns.cfg.ID), Round: int32(ns.lastDelivered)}); err != nil {
		return false, false, nil
	}
	for {
		conn.SetReadDeadline(time.Now().Add(ns.cfg.IdleTimeout)) //lint:allow wiredeterminism deadline arming is the sanctioned wall-clock use
		f, rerr := ReadFrame(conn)
		if rerr != nil {
			if errors.Is(rerr, ErrCRC) {
				ns.adjudicateCRC(conn, f)
				progressed = true
				continue
			}
			return false, progressed, nil
		}
		progressed = true
		switch f.Type {
		case FrameWelcome:
			if err := ns.handleWelcome(conn, f); err != nil {
				return true, true, err
			}
		case FrameReplay:
			if err := ns.handleReplay(conn, f); err != nil {
				return true, true, err
			}
		case FrameStep:
			ns.handleStep(conn, f)
		case FrameRelay:
			ns.handleRelay(f)
		case FrameDeliver:
			ns.handleDeliver(conn, f)
		case FrameFinish:
			ns.reportStats(conn)
			return true, true, nil
		case FrameAbort:
			// The coordinator's model error, verbatim — the node process
			// fails with the same text the engine would return.
			return true, true, errors.New(string(f.Payload))
		}
	}
}

// handleWelcome builds the machine and fault plan from the spec (once;
// re-welcomes after a redial reuse the live machine — its state is the
// whole point of surviving the reconnect). When the coordinator has
// finalized rounds this node is missing, a REPLAY frame follows and
// READY waits for it.
func (ns *nodeState) handleWelcome(conn net.Conn, f Frame) error {
	if ns.m == nil {
		spec, err := ParseRunSpec(f.Payload)
		if err != nil {
			return err
		}
		machines, err := spec.Machines()
		if err != nil {
			return err
		}
		if ns.cfg.ID < 0 || ns.cfg.ID >= spec.N {
			return fmt.Errorf("wire: node id %d outside run over %d nodes", ns.cfg.ID, spec.N)
		}
		plan, err := faults.NewPlan(spec.Fault)
		if err != nil {
			return err
		}
		ns.spec = spec
		ns.m = machines[ns.cfg.ID]
		ns.plan = plan
		ns.jit = rng.New(spec.Seed).Split('n', uint64(ns.cfg.ID))
	}
	if int(f.Round) <= ns.lastDelivered {
		ns.sendReady(conn)
	}
	return nil
}

// handleReplay applies the catch-up log: skip down rounds (the machine
// was frozen), step-and-deliver the rest from the recorded post-fault
// inboxes.
func (ns *nodeState) handleReplay(conn net.Conn, f Frame) error {
	from, rounds, err := parseReplay(f.Payload)
	if err != nil {
		return err
	}
	for i, rr := range rounds {
		q := from + i
		if q <= ns.lastDelivered {
			continue
		}
		if !rr.down {
			act, msg := ns.m.Step(q)
			ns.lastAct, ns.lastOut = act, msg
			if act == dynet.Receive {
				ns.m.Deliver(q, rr.inbox)
			}
			ns.stats.ReplayedRounds++
		}
		ns.lastStepped, ns.lastDelivered = q, q
	}
	ns.sendReady(conn)
	return nil
}

func (ns *nodeState) sendReady(conn net.Conn) {
	out, dec := ns.m.Output()
	var flags uint8
	if dec {
		flags |= FlagDecided
	}
	_ = WriteFrame(conn, &Frame{Type: FrameReady, Flags: flags, Round: int32(ns.lastDelivered), From: int32(ns.cfg.ID), Payload: appendOutput(out)}) // write failure surfaces on the next read
}

// handleStep commits round r. Re-pokes for the already-stepped round
// resend the cached commitment without touching the machine; a NoFault
// re-poke additionally resets the in-progress inbox, because the
// coordinator is about to redeliver it in full.
func (ns *nodeState) handleStep(conn net.Conn, f Frame) {
	r := int(f.Round)
	switch {
	case r == ns.lastStepped && r > ns.lastDelivered:
		if f.Flags&FlagNoFault != 0 {
			ns.inbox = ns.inbox[:0]
		}
	case r > ns.lastStepped && ns.lastStepped == ns.lastDelivered:
		// A gap over lastStepped+1 is a crash outage the coordinator ran
		// without us; the machine was frozen for it, exactly like the
		// engine's down nodes.
		act, msg := ns.m.Step(r)
		ns.lastStepped = r
		ns.lastAct, ns.lastOut = act, msg
		ns.inbox = ns.inbox[:0]
	default:
		return // stale frame from an earlier barrier
	}
	af := Frame{Type: FrameAct, Round: int32(r), From: int32(ns.cfg.ID)}
	if ns.lastAct == dynet.Send {
		af.Flags |= FlagSend
		af.NBits = int32(ns.lastOut.NBits)
		af.Payload = ns.lastOut.Payload
	}
	_ = WriteFrame(conn, &af) // write failure surfaces on the next read
}

// handleRelay appends one inbox message for the in-progress round.
func (ns *nodeState) handleRelay(f Frame) {
	if int(f.Round) != ns.lastStepped || ns.lastDelivered == ns.lastStepped {
		return // stale, or the round was already delivered (redo overlap)
	}
	ns.inbox = append(ns.inbox, dynet.Message{From: int(f.From), NBits: int(f.NBits), Payload: f.Payload})
}

// handleDeliver closes round r's inbox, delivers it (if this node
// committed Receive), and reports status. A re-poke for an
// already-delivered round resends the status from the machine's stable
// post-round state.
func (ns *nodeState) handleDeliver(conn net.Conn, f Frame) {
	r := int(f.Round)
	switch {
	case r == ns.lastDelivered && r > 0:
		// cached status below
	case r == ns.lastStepped && r > ns.lastDelivered:
		if ns.lastAct == dynet.Receive {
			// Relays arrive in the coordinator's ascending-sender order, but
			// sort with the engine's stable pass anyway — identical no-op on
			// sorted input, and it keeps delivery order a shared invariant
			// rather than a transport accident.
			dynet.SortMessagesByFrom(ns.inbox)
			ns.m.Deliver(r, ns.inbox)
		}
		ns.lastDelivered = r
	default:
		return
	}
	out, dec := ns.m.Output()
	var flags uint8
	if dec {
		flags |= FlagDecided
	}
	_ = WriteFrame(conn, &Frame{Type: FrameStatus, Flags: flags, Round: int32(r), From: int32(ns.cfg.ID), Payload: appendOutput(out)}) // write failure surfaces on the next read
}

// adjudicateCRC decides a checksum-failed frame's fate against the
// node's own fault plan: a relay whose (round, edge) the plan corrupts
// is the injected model fault — accept the damaged payload exactly as
// the engine's corruptCopy recipient would. Anything else is line noise
// and is discarded; the coordinator's retry machinery re-pokes.
func (ns *nodeState) adjudicateCRC(conn net.Conn, f Frame) {
	ns.stats.CRCRejects++
	if f.Type != FrameRelay || ns.plan == nil {
		return
	}
	d := ns.plan.Delivery(int(f.Round), int(f.From), int(f.To), int(f.NBits))
	if d.FlipBit >= 0 {
		ns.handleRelay(f)
	}
}

// reportStats answers FINISH with the transport counter report and
// mirrors it into the local registry, then lets the session end.
func (ns *nodeState) reportStats(conn net.Conn) {
	if reg := ns.cfg.Stats; reg != nil {
		reg.Counter("wire_node_redials_total").Add(ns.stats.Redials)
		reg.Counter("wire_crc_rejects_total").Add(ns.stats.CRCRejects)
		reg.Counter("wire_replayed_rounds_total").Add(ns.stats.ReplayedRounds)
	}
	_ = WriteFrame(conn, &Frame{Type: FrameStats, From: int32(ns.cfg.ID), Payload: encodeNodeStats(ns.stats)}) // the run is over; nothing depends on the report landing
}
