package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"dyndiam/internal/dynet"
)

// Crash-rejoin replay. The coordinator logs every finalized round (down
// mask + per-node post-fault inboxes); when a node process reconnects —
// live after a connection reset, or a fresh process after SIGKILL — the
// gap between the node's last completed round and the coordinator's
// finalized round is shipped as one REPLAY frame. Replayed inboxes are
// post-fault copies (faults were adjudicated when the round ran), so a
// rejoining node reconstructs the machine state the engine would have,
// byte for byte.
//
// Payload layout (big endian):
//
//	u32  first replayed round
//	u32  round count
//	per round:
//	  u8   down flag (1 = the node was crashed; nothing to apply)
//	  u16  message count
//	  per message: u32 from, u32 nbits, u32 payload length, payload

// replayRound is one decoded catch-up round for one node.
type replayRound struct {
	down  bool
	inbox []dynet.Message
}

// encodeReplay serializes rounds from..to (inclusive) of node id's log.
func (co *coordinator) encodeReplay(id, from, to int) []byte {
	dst := binary.BigEndian.AppendUint32(nil, uint32(from))
	dst = binary.BigEndian.AppendUint32(dst, uint32(to-from+1))
	for q := from; q <= to; q++ {
		down := co.logDown[q-1]
		if down != nil && down[id] {
			dst = append(dst, 1)
			dst = binary.BigEndian.AppendUint16(dst, 0)
			continue
		}
		inbox := co.logInbox[q-1][id]
		dst = append(dst, 0)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(inbox)))
		for _, m := range inbox {
			dst = binary.BigEndian.AppendUint32(dst, uint32(m.From))
			dst = binary.BigEndian.AppendUint32(dst, uint32(m.NBits))
			dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Payload)))
			dst = append(dst, m.Payload...)
		}
	}
	return dst
}

// parseReplay decodes a REPLAY payload into (first round, rounds).
func parseReplay(payload []byte) (int, []replayRound, error) {
	if len(payload) < 8 {
		return 0, nil, fmt.Errorf("wire: replay payload truncated at %d bytes", len(payload))
	}
	from := int(binary.BigEndian.Uint32(payload[:4]))
	count := int(binary.BigEndian.Uint32(payload[4:8]))
	p := payload[8:]
	rounds := make([]replayRound, 0, count)
	for i := 0; i < count; i++ {
		if len(p) < 3 {
			return 0, nil, fmt.Errorf("wire: replay round %d truncated", from+i)
		}
		rr := replayRound{down: p[0] == 1}
		m := int(binary.BigEndian.Uint16(p[1:3]))
		p = p[3:]
		for j := 0; j < m; j++ {
			if len(p) < 12 {
				return 0, nil, fmt.Errorf("wire: replay round %d message %d truncated", from+i, j)
			}
			sender := int(int32(binary.BigEndian.Uint32(p[:4])))
			nbits := int(int32(binary.BigEndian.Uint32(p[4:8])))
			plen := int(binary.BigEndian.Uint32(p[8:12]))
			p = p[12:]
			if len(p) < plen {
				return 0, nil, fmt.Errorf("wire: replay round %d message %d payload truncated", from+i, j)
			}
			rr.inbox = append(rr.inbox, dynet.Message{
				From:    sender,
				NBits:   nbits,
				Payload: append([]byte(nil), p[:plen]...),
			})
			p = p[plen:]
		}
		rounds = append(rounds, rr)
	}
	return from, rounds, nil
}

// nodeStats is the per-node transport counter report carried by a STATS
// frame and folded into the coordinator's transport registry.
type nodeStats struct {
	// Redials counts re-established coordinator connections.
	Redials int64 `json:"redials"`
	// CRCRejects counts CRC-failed relay frames adjudicated against the
	// node's fault plan (accepted as injected corruption or discarded as
	// line noise).
	CRCRejects int64 `json:"crc_rejects"`
	// ReplayedRounds counts rounds reconstructed from REPLAY frames.
	ReplayedRounds int64 `json:"replayed_rounds"`
}

func encodeNodeStats(st nodeStats) []byte {
	b, _ := json.Marshal(st)
	return b
}

func parseNodeStats(payload []byte) (nodeStats, error) {
	var st nodeStats
	if err := json.Unmarshal(payload, &st); err != nil {
		return nodeStats{}, fmt.Errorf("wire: invalid node stats: %w", err)
	}
	return st, nil
}

// frameOutput extracts the int64 output carried by READY/STATUS frames.
func frameOutput(f Frame) int64 {
	if len(f.Payload) < 8 {
		return 0
	}
	return int64(binary.BigEndian.Uint64(f.Payload[:8]))
}

// appendOutput serializes an output value for READY/STATUS frames.
func appendOutput(out int64) []byte {
	return binary.BigEndian.AppendUint64(nil, uint64(out))
}
