package wire

import (
	"net"
	"reflect"
	"testing"

	"dyndiam/internal/dynet"
)

// The replay-log edge cases: a node rejoining at the run's final round,
// a node crashing twice inside one outage window, and REPLAY frames
// arriving after the node has already caught up (coordinator
// termination re-pokes). All table-driven, all run under -race in CI;
// the replay path must be idempotent and must never touch the machine
// for rounds it already completed.

// stepRec is one recorded machine interaction.
type stepRec struct {
	kind  string // "step" or "deliver"
	round int
	msgs  int
}

// recMachine records every Step/Deliver so tests can assert exactly
// which rounds the replay path applied.
type recMachine struct {
	calls []stepRec
}

func (m *recMachine) Step(r int) (dynet.Action, dynet.Message) {
	m.calls = append(m.calls, stepRec{kind: "step", round: r})
	return dynet.Receive, dynet.Message{}
}

func (m *recMachine) Deliver(r int, msgs []dynet.Message) {
	m.calls = append(m.calls, stepRec{kind: "deliver", round: r, msgs: len(msgs)})
}

func (m *recMachine) Output() (int64, bool) { return 42, true }

// replayLog builds a coordinator holding a finalized log for n nodes:
// downRounds marks (round, node) pairs that were crashed, inboxes maps
// round -> node -> messages delivered that round.
func replayLog(rounds, n int, downRounds map[[2]int]bool, inboxes map[[2]int][]dynet.Message) *coordinator {
	co := &coordinator{}
	for q := 1; q <= rounds; q++ {
		down := make([]bool, n)
		ib := make([][]dynet.Message, n)
		for v := 0; v < n; v++ {
			down[v] = downRounds[[2]int{q, v}]
			ib[v] = inboxes[[2]int{q, v}]
		}
		co.logDown = append(co.logDown, down)
		co.logInbox = append(co.logInbox, ib)
	}
	return co
}

func msg(from int, payload ...byte) dynet.Message {
	return dynet.Message{From: from, NBits: 8 * len(payload), Payload: payload}
}

// TestReplayCodecEdgeCases round-trips encodeReplay/parseReplay over the
// awkward logs: single-final-round windows, repeated crashes of the same
// node inside one window, and empty inboxes.
func TestReplayCodecEdgeCases(t *testing.T) {
	t.Parallel()
	const n = 3
	cases := []struct {
		name     string
		rounds   int
		down     map[[2]int]bool
		inboxes  map[[2]int][]dynet.Message
		id       int
		from, to int
		want     []replayRound
	}{
		{
			name:   "rejoin at the final round",
			rounds: 4,
			inboxes: map[[2]int][]dynet.Message{
				{4, 1}: {msg(0, 0xab), msg(2, 0xcd, 0xef)},
			},
			id: 1, from: 4, to: 4,
			want: []replayRound{
				{inbox: []dynet.Message{msg(0, 0xab), msg(2, 0xcd, 0xef)}},
			},
		},
		{
			name:   "two crashes of one node in one window",
			rounds: 6,
			down: map[[2]int]bool{
				{2, 1}: true, {3, 1}: true, // first outage
				{5, 1}: true, // second outage, same window
			},
			inboxes: map[[2]int][]dynet.Message{
				{4, 1}: {msg(0, 0x01)},
				{6, 1}: {msg(2, 0x02)},
			},
			id: 1, from: 2, to: 6,
			want: []replayRound{
				{down: true},
				{down: true},
				{inbox: []dynet.Message{msg(0, 0x01)}},
				{down: true},
				{inbox: []dynet.Message{msg(2, 0x02)}},
			},
		},
		{
			name:   "empty inboxes survive the round trip",
			rounds: 2,
			id:     0, from: 1, to: 2,
			want: []replayRound{{}, {}},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			co := replayLog(tc.rounds, n, tc.down, tc.inboxes)
			payload := co.encodeReplay(tc.id, tc.from, tc.to)
			from, rounds, err := parseReplay(payload)
			if err != nil {
				t.Fatal(err)
			}
			if from != tc.from {
				t.Fatalf("decoded first round %d, want %d", from, tc.from)
			}
			if len(rounds) != len(tc.want) {
				t.Fatalf("decoded %d rounds, want %d", len(rounds), len(tc.want))
			}
			for i := range rounds {
				if rounds[i].down != tc.want[i].down {
					t.Errorf("round %d down=%v, want %v", tc.from+i, rounds[i].down, tc.want[i].down)
				}
				if len(rounds[i].inbox) != 0 || len(tc.want[i].inbox) != 0 {
					if !reflect.DeepEqual(rounds[i].inbox, tc.want[i].inbox) {
						t.Errorf("round %d inbox %+v, want %+v", tc.from+i, rounds[i].inbox, tc.want[i].inbox)
					}
				}
			}
		})
	}
}

// readReady reads one frame from conn and sends it down ch.
func readReady(t *testing.T, conn net.Conn, ch chan<- Frame) {
	t.Helper()
	f, err := ReadFrame(conn)
	if err != nil {
		close(ch)
		return
	}
	ch <- f
}

// TestHandleReplayEdgeCases drives nodeState.handleReplay over a real
// pipe: final-round rejoin applies exactly the missing round, repeated
// crashes skip the machine for every down round, and a REPLAY arriving
// after the node has finished (coordinator-termination re-poke) is a
// pure READY resend with the machine untouched.
func TestHandleReplayEdgeCases(t *testing.T) {
	t.Parallel()
	const n = 3
	cases := []struct {
		name      string
		nodeAt    int // lastStepped == lastDelivered before the replay
		rounds    int
		down      map[[2]int]bool
		inboxes   map[[2]int][]dynet.Message
		from, to  int
		wantCalls []stepRec
		wantRound int32 // READY round
		wantStats int64 // ReplayedRounds delta
	}{
		{
			name:   "rejoin at the final round",
			nodeAt: 3, rounds: 4,
			inboxes:   map[[2]int][]dynet.Message{{4, 1}: {msg(0, 0x11)}},
			from:      4,
			to:        4,
			wantCalls: []stepRec{{kind: "step", round: 4}, {kind: "deliver", round: 4, msgs: 1}},
			wantRound: 4,
			wantStats: 1,
		},
		{
			name:   "two crashes of one node in one outage window",
			nodeAt: 1, rounds: 6,
			down: map[[2]int]bool{{2, 1}: true, {3, 1}: true, {5, 1}: true},
			inboxes: map[[2]int][]dynet.Message{
				{4, 1}: {msg(0, 0x01)},
				{6, 1}: {msg(2, 0x02), msg(0, 0x03)},
			},
			from: 2, to: 6,
			wantCalls: []stepRec{
				{kind: "step", round: 4}, {kind: "deliver", round: 4, msgs: 1},
				{kind: "step", round: 6}, {kind: "deliver", round: 6, msgs: 2},
			},
			wantRound: 6,
			wantStats: 2,
		},
		{
			name:   "replay after termination is idempotent",
			nodeAt: 4, rounds: 4,
			inboxes:   map[[2]int][]dynet.Message{{4, 1}: {msg(0, 0x11)}},
			from:      1,
			to:        4,
			wantCalls: nil, // every round is <= lastDelivered: machine untouched
			wantRound: 4,
			wantStats: 0,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			co := replayLog(tc.rounds, n, tc.down, tc.inboxes)
			payload := co.encodeReplay(1, tc.from, tc.to)

			mach := &recMachine{}
			ns := &nodeState{
				cfg:           NodeConfig{ID: 1},
				m:             mach,
				lastStepped:   tc.nodeAt,
				lastDelivered: tc.nodeAt,
			}
			nodeConn, coordConn := net.Pipe()
			defer nodeConn.Close()
			defer coordConn.Close()
			ready := make(chan Frame, 1)
			go readReady(t, coordConn, ready)

			if err := ns.handleReplay(nodeConn, Frame{Type: FrameReplay, Payload: payload}); err != nil {
				t.Fatal(err)
			}
			f, ok := <-ready
			if !ok {
				t.Fatal("no READY frame after replay")
			}
			if f.Type != FrameReady || f.Round != tc.wantRound {
				t.Fatalf("READY frame type=%v round=%d, want type=%v round=%d", f.Type, f.Round, FrameReady, tc.wantRound)
			}
			if !reflect.DeepEqual(mach.calls, tc.wantCalls) {
				t.Fatalf("machine calls %+v, want %+v", mach.calls, tc.wantCalls)
			}
			if int(tc.wantRound) != ns.lastDelivered || ns.lastStepped != ns.lastDelivered {
				t.Fatalf("node position stepped=%d delivered=%d, want both %d", ns.lastStepped, ns.lastDelivered, tc.wantRound)
			}
			if ns.stats.ReplayedRounds != tc.wantStats {
				t.Fatalf("ReplayedRounds = %d, want %d", ns.stats.ReplayedRounds, tc.wantStats)
			}

			// A second, identical REPLAY must be a pure no-op resend.
			go readReady(t, coordConn, ready)
			if err := ns.handleReplay(nodeConn, Frame{Type: FrameReplay, Payload: payload}); err != nil {
				t.Fatal(err)
			}
			if f2, ok := <-ready; !ok || f2.Round != tc.wantRound {
				t.Fatalf("re-replay READY round=%d ok=%v, want %d", f2.Round, ok, tc.wantRound)
			}
			if !reflect.DeepEqual(mach.calls, tc.wantCalls) {
				t.Fatalf("re-replay touched the machine: %+v", mach.calls)
			}
		})
	}
}
