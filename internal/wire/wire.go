// Package wire is the distributed execution layer: it runs the same
// protocol Machines the in-process Engine runs, but as real per-node
// processes synchronized over TCP by a coordinator-driven round barrier.
//
// The layer's contract is distributed equivalence: under the same RunSpec
// (seeds, adversary, fault spec), a distributed execution produces
// byte-identical per-round traces, per-node outputs, message/bit totals,
// obs event streams, and error texts as dynet.Engine.Run. The guarantee
// is structural, not aspirational — the coordinator reuses the engine's
// own exported round machinery (dynet wire hooks: error constructors,
// inbox assembly, FaultRunner, trace recording), and every wire-level
// fault decision is a pure function of (seed, round, node, edge) through
// internal/faults, so the fault-wrapping socket layer and the
// coordinator's accounting cannot disagree. RunInProcess and Diff turn
// the contract into a golden differential test.
//
// Topology: N node processes (RunNode) dial one coordinator (Run). The
// coordinator owns the adversary, CONGEST budget enforcement (validated
// on ACT frames as they arrive off the socket), connectivity checking,
// fault accounting, tracing, metrics, and termination; node processes own
// only their Machine. Each round is four frame exchanges: STEP fan-out,
// ACT fan-in (the send/receive commitments), RELAY+DELIVER fan-out (each
// receiver's inbox, faulted on the wire by the FaultListener wrapper),
// and STATUS fan-in (outputs/decided).
//
// Robustness: frames are length-prefixed with CRC-checked records; the
// transport runs per-round deadlines, bounded retry with exponential
// backoff and deterministic jitter (rng.Split), and connection
// re-establishment after resets. A node process killed with SIGKILL
// rejoins after relaunch: the coordinator replays its per-round log
// (down-rounds skipped, post-fault inboxes redelivered), the machine is
// rebuilt deterministically, and the run resumes from the round barrier.
package wire

import (
	"bytes"
	"encoding/json"
	"fmt"

	"dyndiam/internal/adversaries"
	"dyndiam/internal/dynet"
	"dyndiam/internal/faults"
	"dyndiam/internal/graph"
	"dyndiam/internal/protocols/consensus"
	"dyndiam/internal/protocols/flood"
	"dyndiam/internal/protocols/leader"
)

// RunSpec is the complete, serializable description of one distributed
// run. The coordinator sends it to every node in the WELCOME frame, so a
// node process needs only (id, coordinator address) on its command line;
// everything else — protocol, inputs, seeds, fault mix — arrives over
// the wire and is identical across the cluster by construction.
type RunSpec struct {
	// Proto names the protocol (see ProtoNames): cflood, pflood, leader,
	// consensus.
	Proto string `json:"proto"`
	// N is the node count; node ids are 0..N-1.
	N int `json:"n"`
	// Seed roots the public coin tape (dynet.NewMachines) and the
	// transport's deterministic backoff jitter.
	Seed uint64 `json:"seed"`
	// MaxRounds bounds the execution like Engine.Run's maxRounds.
	MaxRounds int `json:"max_rounds"`
	// CheckConnectivity verifies each round's topology as the model
	// requires of the adversary.
	CheckConnectivity bool `json:"check_connectivity,omitempty"`
	// Adv names the coordinator-side adversary (see BuildAdversary):
	// line, ring, star, complete, random, bounded, rotating. Empty means
	// ring. Node processes ignore it — the topology is the coordinator's.
	Adv string `json:"adv,omitempty"`
	// AdvD is the bounded adversary's target diameter.
	AdvD int `json:"adv_d,omitempty"`
	// Extra carries protocol parameters (diameter bound, N', ...).
	Extra map[string]int64 `json:"extra,omitempty"`
	// Fault is the injected fault mix, applied at the socket layer by the
	// FaultListener and mirrored by the coordinator's accounting.
	Fault faults.Spec `json:"fault"`
}

// protoDef is one protocol registry entry. The registry is a slice, not
// a map: the frame path iterates it, and map iteration order is banned
// on that path (wiredeterminism).
type protoDef struct {
	name  string
	build func() dynet.Protocol
	// inputs builds the per-node problem inputs.
	inputs func(n int) []int64
	// termNode is the node whose decision terminates the run, or -1 for
	// all-nodes-decided.
	termNode int
}

var protoDefs = []protoDef{
	{"cflood", func() dynet.Protocol { return flood.CFlood{} }, tokenAtZero, 0},
	{"pflood", func() dynet.Protocol { return flood.PFlood{} }, tokenAtZero, 0},
	{"leader", func() dynet.Protocol { return leader.Protocol{} }, nil, -1},
	{"consensus", func() dynet.Protocol { return consensus.KnownD{} }, parityInputs, -1},
}

func tokenAtZero(n int) []int64 {
	in := make([]int64, n)
	in[0] = 1
	return in
}

func parityInputs(n int) []int64 {
	in := make([]int64, n)
	for v := range in {
		in[v] = int64(v % 2)
	}
	return in
}

// ProtoNames lists the runnable protocols in registry order.
func ProtoNames() []string {
	names := make([]string, len(protoDefs))
	for i, d := range protoDefs {
		names[i] = d.name
	}
	return names
}

func (s *RunSpec) proto() (protoDef, error) {
	for _, d := range protoDefs {
		if d.name == s.Proto {
			return d, nil
		}
	}
	return protoDef{}, fmt.Errorf("wire: unknown protocol %q (have %v)", s.Proto, ProtoNames())
}

// Validate checks the spec the way ParseRunSpec does.
func (s *RunSpec) Validate() error {
	if _, err := s.proto(); err != nil {
		return err
	}
	if s.N < 1 {
		return fmt.Errorf("wire: run needs at least one node, got n=%d", s.N)
	}
	if s.MaxRounds < 0 {
		return fmt.Errorf("wire: negative round budget %d", s.MaxRounds)
	}
	if _, err := s.BuildAdversary(); err != nil {
		return err
	}
	return s.Fault.Validate()
}

// EncodeRunSpec validates and serializes a spec; ParseRunSpec reverses
// it, rejecting unknown fields and invalid fault mixes.
func EncodeRunSpec(s RunSpec) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(s)
}

// ParseRunSpec decodes and validates a serialized RunSpec.
func ParseRunSpec(data []byte) (RunSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s RunSpec
	if err := dec.Decode(&s); err != nil {
		return RunSpec{}, fmt.Errorf("wire: invalid run spec JSON: %w", err)
	}
	if err := s.Validate(); err != nil {
		return RunSpec{}, err
	}
	return s, nil
}

// Machines instantiates the spec's full machine set, exactly as the
// in-process engine would. Node v of a distributed run owns Machines()[v]
// and nothing else; the shared seed makes every process agree on the
// whole set without communicating.
func (s *RunSpec) Machines() ([]dynet.Machine, error) {
	d, err := s.proto()
	if err != nil {
		return nil, err
	}
	var inputs []int64
	if d.inputs != nil {
		inputs = d.inputs(s.N)
	}
	return dynet.NewMachines(d.build(), s.N, inputs, s.Seed, s.Extra), nil
}

// TermNode returns the node whose decision terminates the run, or -1
// for all-nodes-decided — the spec-level form of the engine's
// Terminated predicate.
func (s *RunSpec) TermNode() (int, error) {
	d, err := s.proto()
	if err != nil {
		return 0, err
	}
	return d.termNode, nil
}

// BuildAdversary constructs the coordinator's adversary from the spec.
// Adversaries are deterministic in (seed, round, actions), so the
// distributed coordinator and the in-process twin, each holding a fresh
// instance, see identical topologies.
func (s *RunSpec) BuildAdversary() (dynet.Adversary, error) {
	name := s.Adv
	if name == "" {
		name = "ring"
	}
	n := s.N
	switch name {
	case "line":
		return dynet.Static(graph.Line(n)), nil
	case "ring":
		return dynet.Static(graph.Ring(n)), nil
	case "star":
		return dynet.Static(graph.Star(n)), nil
	case "complete":
		return dynet.Static(graph.Complete(n)), nil
	case "random":
		return adversaries.RandomConnected(n, n/2, s.Seed), nil
	case "bounded":
		d := s.AdvD
		if d < 1 {
			d = 4
		}
		return adversaries.BoundedDiameter(n, d, n/2, s.Seed), nil
	case "rotating":
		return adversaries.RotatingStar(n), nil
	}
	return nil, fmt.Errorf("wire: unknown adversary %q", name)
}
